//! Two-phase quantized search: an SQ8 PDXearch scan producing
//! candidates, then an exact `f32` rerank.
//!
//! **Phase 1** walks quantized blocks with the PDXearch phase structure
//! (START / WARMUP / PRUNE, §4 of the paper) and collects the top-`c`
//! candidates by *estimated* distance — the distance to each vector's
//! dequantized reconstruction. For the monotone metrics (L2/L1) the
//! weighted SQ8 partial sums only grow with scanned dimensions, so the
//! scan prunes candidates against the current c-th best estimate exactly
//! like PDX-BOND does in `f32` — the pruning is exact *with respect to
//! the estimate*; the estimate itself carries quantization error, which
//! is why phase 2 exists. Inner product is not monotone, so its scan is
//! a plain quantized linear scan.
//!
//! **Phase 2** recomputes the true `f32` distance of the `c` candidates
//! against the uncompressed vectors (a per-candidate random access into
//! the row-major rerank payload — cold data, touched `c` times per
//! query) and returns the exact top-`k` of the candidate set. With
//! `c = refine·k` a small refine factor (4 by default) recovers
//! recall ≥ 0.95 while the scan reads 4× fewer bytes than `f32` PDX.

use crate::distance::{distance_scalar, Metric};
use crate::heap::{KnnHeap, Neighbor};
use crate::kernels::dispatch::KernelPolicy;
use crate::kernels::sq8::{
    sq8_accumulate_policy, sq8_accumulate_positions_policy, sq8_scan_policy,
};
use crate::layout::{QuantizedPdxBlock, Sq8Quantizer, Sq8Query};
use crate::pruning::{checkpoints, StepPolicy};

/// Default candidate-refinement factor of the two-phase search: phase 1
/// keeps `refine · k` candidates for phase 2 to rerank.
pub const DEFAULT_REFINE: usize = 4;

/// One searchable quantized block: SQ8 codes plus the global ids of its
/// vectors (the quantized twin of
/// [`SearchBlock`](crate::collection::SearchBlock)).
#[derive(Debug, Clone, PartialEq)]
pub struct Sq8Block {
    /// The codes, dimension-major in groups.
    pub codes: QuantizedPdxBlock,
    /// Global id of each vector (block order).
    pub row_ids: Vec<u64>,
}

impl Sq8Block {
    /// Quantizes row-major data into a searchable block.
    ///
    /// # Panics
    /// Panics if buffer sizes disagree or `ids.len()` differs from the
    /// number of rows.
    pub fn new(
        rows: &[f32],
        ids: Vec<u64>,
        n_dims: usize,
        group_size: usize,
        quantizer: &Sq8Quantizer,
    ) -> Self {
        let codes = QuantizedPdxBlock::from_rows(rows, ids.len(), n_dims, group_size, quantizer);
        Self {
            codes,
            row_ids: ids,
        }
    }

    /// Number of vectors in the block.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }
}

/// Reusable per-query buffers of the quantized scan.
#[derive(Default)]
struct Scratch {
    partials: Vec<f32>,
    positions: Vec<u32>,
    compact: Vec<f32>,
    lane_ids: Vec<u32>,
}

/// Phase 1: quantized PDXearch scan over `blocks` in the given order,
/// returning the top-`c` candidates by estimated distance (ascending).
///
/// Dimension pruning engages for monotone metrics (L2/L1) once the
/// candidate heap is full; inner product scans linearly. `step` is the
/// checkpoint schedule of the WARMUP phase (the paper's adaptive
/// doubling by default).
///
/// # Panics
/// Panics if `c == 0` or a block's dimensionality differs from the
/// query's.
pub fn sq8_search(q: &Sq8Query, blocks: &[&Sq8Block], c: usize, step: StepPolicy) -> Vec<Neighbor> {
    sq8_search_policy(q, blocks, c, step, KernelPolicy::Auto)
}

/// [`sq8_search`] with an explicit kernel policy (bit-identical across
/// policies — the SIMD kernels reproduce the scalar accumulation order).
pub fn sq8_search_policy(
    q: &Sq8Query,
    blocks: &[&Sq8Block],
    c: usize,
    step: StepPolicy,
    kernel: KernelPolicy,
) -> Vec<Neighbor> {
    assert!(c > 0, "candidate count must be positive");
    let dims = q.dims();
    let mut heap = KnnHeap::new(c);
    let mut scratch = Scratch::default();
    let prune = q.metric.is_monotonic();
    let ckpts = checkpoints(step, dims);

    for block in blocks {
        if block.is_empty() {
            continue;
        }
        assert_eq!(block.codes.dims(), dims, "query dimensionality mismatch");
        if !prune || heap.len() < c {
            // START (or a non-monotone metric): full linear scan.
            scratch.partials.clear();
            scratch.partials.resize(block.len(), 0.0);
            sq8_scan_policy(q, &block.codes, &mut scratch.partials, kernel);
            for (i, &d) in scratch.partials.iter().enumerate() {
                heap.push(block.row_ids[i], d);
            }
            continue;
        }
        scan_block_pruned(q, block, &ckpts, kernel, &mut heap, &mut scratch);
    }
    heap.into_sorted()
}

/// WARMUP + PRUNE scan of one quantized block against the candidate
/// heap's threshold. Mirrors the `f32` PDXearch block scan with the
/// trivial monotone-bound survival test `partial ≤ threshold`.
fn scan_block_pruned(
    q: &Sq8Query,
    block: &Sq8Block,
    ckpts: &[usize],
    kernel: KernelPolicy,
    heap: &mut KnnHeap,
    scratch: &mut Scratch,
) {
    let dims = block.codes.dims();
    let n = block.len();
    // The paper's selection threshold: drop to position-gather mode once
    // at most 20 % of the block survives.
    let sel_limit = ((n as f32) * 0.20).ceil() as usize;

    scratch.partials.clear();
    scratch.partials.resize(n, 0.0);
    let mut scanned = 0usize;
    let mut pruning = false;

    for &ck in ckpts {
        if !pruning {
            for g in block.codes.groups() {
                let acc = &mut scratch.partials[g.start_vector..g.start_vector + g.lanes];
                sq8_accumulate_policy(q, &g, scanned..ck, acc, kernel);
            }
            scanned = ck;
            if scanned == dims {
                for (i, &d) in scratch.partials.iter().enumerate() {
                    heap.push(block.row_ids[i], d + q.bias);
                }
                return;
            }
            let threshold = heap.threshold() - q.bias;
            let survivors = scratch
                .partials
                .iter()
                .map(|&p| (p <= threshold) as usize)
                .sum::<usize>();
            if survivors <= sel_limit {
                scratch.positions.clear();
                scratch.compact.clear();
                for (i, &p) in scratch.partials.iter().enumerate() {
                    if p <= threshold {
                        scratch.positions.push(i as u32);
                        scratch.compact.push(p);
                    }
                }
                pruning = true;
                if scratch.positions.is_empty() {
                    return;
                }
            }
        } else {
            accumulate_survivors(q, block, scanned, ck, kernel, scratch);
            scanned = ck;
            if scanned == dims {
                for (j, &pos) in scratch.positions.iter().enumerate() {
                    heap.push(block.row_ids[pos as usize], scratch.compact[j] + q.bias);
                }
                return;
            }
            let threshold = heap.threshold() - q.bias;
            let mut w = 0usize;
            for j in 0..scratch.positions.len() {
                let keep = scratch.compact[j] <= threshold;
                scratch.positions[w] = scratch.positions[j];
                scratch.compact[w] = scratch.compact[j];
                w += keep as usize;
            }
            scratch.positions.truncate(w);
            scratch.compact.truncate(w);
            if scratch.positions.is_empty() {
                return;
            }
        }
    }
}

/// PRUNE-phase accumulation over survivor positions, one group run at a
/// time (same group-locality walk as the `f32` path).
fn accumulate_survivors(
    q: &Sq8Query,
    block: &Sq8Block,
    scanned: usize,
    ck: usize,
    kernel: KernelPolicy,
    scratch: &mut Scratch,
) {
    let gsize = block.codes.group_size();
    let positions = &scratch.positions;
    let compact = &mut scratch.compact;
    let lane_ids = &mut scratch.lane_ids;
    let mut j0 = 0usize;
    while j0 < positions.len() {
        let g_idx = positions[j0] as usize / gsize;
        let mut j1 = j0 + 1;
        while j1 < positions.len() && positions[j1] as usize / gsize == g_idx {
            j1 += 1;
        }
        let g = block.codes.group(g_idx);
        lane_ids.clear();
        lane_ids.extend(positions[j0..j1].iter().map(|&p| p - g.start_vector as u32));
        sq8_accumulate_positions_policy(q, &g, scanned..ck, lane_ids, &mut compact[j0..j1], kernel);
        j0 = j1;
    }
}

/// Phase 2: exact rerank of `candidates` against the uncompressed
/// row-major `rows` (indexed by the candidates' global ids); returns the
/// true top-`k` of the candidate set, ascending by distance.
///
/// # Panics
/// Panics if a candidate id lies outside `rows` or `k == 0`.
pub fn sq8_rerank(
    metric: Metric,
    rows: &[f32],
    dims: usize,
    query: &[f32],
    candidates: &[Neighbor],
    k: usize,
) -> Vec<Neighbor> {
    assert_eq!(query.len(), dims, "query dimensionality mismatch");
    let mut heap = KnnHeap::new(k);
    for cand in candidates {
        let i = cand.id as usize;
        let row = &rows[i * dims..(i + 1) * dims];
        heap.push(cand.id, distance_scalar(metric, query, row));
    }
    heap.into_sorted()
}

/// The full two-phase search: quantized scan for `refine · k`
/// candidates, exact `f32` rerank to `k`.
///
/// # Panics
/// Panics if `k == 0` (a zero `refine` is clamped to 1).
#[allow(clippy::too_many_arguments)]
pub fn sq8_two_phase(
    quantizer: &Sq8Quantizer,
    blocks: &[&Sq8Block],
    rows: &[f32],
    dims: usize,
    metric: Metric,
    query: &[f32],
    k: usize,
    refine: usize,
    step: StepPolicy,
) -> Vec<Neighbor> {
    sq8_two_phase_policy(
        quantizer,
        blocks,
        rows,
        dims,
        metric,
        query,
        k,
        refine,
        step,
        KernelPolicy::Auto,
    )
}

/// [`sq8_two_phase`] with an explicit kernel policy for the quantized
/// scan (the rerank is always the scalar `f32` reference distance).
#[allow(clippy::too_many_arguments)]
pub fn sq8_two_phase_policy(
    quantizer: &Sq8Quantizer,
    blocks: &[&Sq8Block],
    rows: &[f32],
    dims: usize,
    metric: Metric,
    query: &[f32],
    k: usize,
    refine: usize,
    step: StepPolicy,
    kernel: KernelPolicy,
) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    let q = quantizer.prepare_query(metric, query);
    let candidates = sq8_search_policy(&q, blocks, k * refine.max(1), step, kernel);
    sq8_rerank(metric, rows, dims, query, &candidates, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::sq8::sq8_scan;

    fn make_rows(n: usize, d: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..n * d)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 4.0 - 2.0
            })
            .collect()
    }

    fn make_blocks(
        rows: &[f32],
        n: usize,
        d: usize,
        block_size: usize,
        group: usize,
        quantizer: &Sq8Quantizer,
    ) -> Vec<Sq8Block> {
        let mut blocks = Vec::new();
        let mut v0 = 0usize;
        while v0 < n {
            let here = block_size.min(n - v0);
            let ids: Vec<u64> = (v0 as u64..(v0 + here) as u64).collect();
            blocks.push(Sq8Block::new(
                &rows[v0 * d..(v0 + here) * d],
                ids,
                d,
                group,
                quantizer,
            ));
            v0 += here;
        }
        blocks
    }

    fn brute(rows: &[f32], d: usize, q: &[f32], k: usize, metric: Metric) -> Vec<u64> {
        let mut heap = KnnHeap::new(k);
        for (i, row) in rows.chunks_exact(d).enumerate() {
            heap.push(i as u64, distance_scalar(metric, q, row));
        }
        heap.into_sorted().iter().map(|n| n.id).collect()
    }

    #[test]
    fn pruned_scan_equals_linear_scan_of_estimates() {
        // The quantized PDXearch must return exactly the top-c of the
        // estimated distances — pruning is exact w.r.t. the estimate.
        let (n, d, c) = (600, 24, 20);
        let rows = make_rows(n, d, 3);
        let qz = Sq8Quantizer::fit(&rows, n, d);
        let blocks = make_blocks(&rows, n, d, 100, 64, &qz);
        let refs: Vec<&Sq8Block> = blocks.iter().collect();
        let raw_q = make_rows(1, d, 99);
        for metric in [Metric::L2, Metric::L1, Metric::NegativeIp] {
            let q = qz.prepare_query(metric, &raw_q);
            let got = sq8_search(&q, &refs, c, StepPolicy::default());
            // Reference: scan every block fully.
            let mut heap = KnnHeap::new(c);
            for b in &blocks {
                let mut out = vec![0.0; b.len()];
                sq8_scan(&q, &b.codes, &mut out);
                for (i, &dist) in out.iter().enumerate() {
                    heap.push(b.row_ids[i], dist);
                }
            }
            let want = heap.into_sorted();
            let gd: Vec<f32> = got.iter().map(|x| x.distance).collect();
            let wd: Vec<f32> = want.iter().map(|x| x.distance).collect();
            for (a, b) in gd.iter().zip(&wd) {
                assert!((a - b).abs() <= b.abs().max(1.0) * 1e-4, "{metric:?}");
            }
        }
    }

    #[test]
    fn two_phase_recovers_exact_top_k() {
        // With enough refinement the two-phase result matches brute force
        // on the raw f32 data.
        let (n, d, k) = (800, 16, 10);
        let rows = make_rows(n, d, 7);
        let qz = Sq8Quantizer::fit(&rows, n, d);
        let blocks = make_blocks(&rows, n, d, 128, 32, &qz);
        let refs: Vec<&Sq8Block> = blocks.iter().collect();
        let raw_q = make_rows(1, d, 5);
        let got = sq8_two_phase(
            &qz,
            &refs,
            &rows,
            d,
            Metric::L2,
            &raw_q,
            k,
            8,
            StepPolicy::default(),
        );
        let ids: Vec<u64> = got.iter().map(|x| x.id).collect();
        assert_eq!(ids, brute(&rows, d, &raw_q, k, Metric::L2));
    }

    #[test]
    fn rerank_distances_are_exact() {
        let (n, d) = (50, 8);
        let rows = make_rows(n, d, 11);
        let q = make_rows(1, d, 2);
        let candidates: Vec<Neighbor> = (0..n as u64)
            .map(|id| Neighbor {
                id,
                distance: 999.0, // estimates are ignored by the rerank
            })
            .collect();
        let got = sq8_rerank(Metric::L2, &rows, d, &q, &candidates, 5);
        let want = brute(&rows, d, &q, 5, Metric::L2);
        assert_eq!(got.iter().map(|x| x.id).collect::<Vec<_>>(), want);
        for x in &got {
            let row = &rows[x.id as usize * d..(x.id as usize + 1) * d];
            assert_eq!(x.distance, distance_scalar(Metric::L2, &q, row));
        }
    }

    #[test]
    fn empty_blocks_are_skipped() {
        let d = 6;
        let rows = make_rows(20, d, 1);
        let qz = Sq8Quantizer::fit(&rows, 20, d);
        let empty = Sq8Block::new(&[], Vec::new(), d, 16, &qz);
        let full = Sq8Block::new(&rows, (0..20).collect(), d, 16, &qz);
        let q = qz.prepare_query(Metric::L2, &make_rows(1, d, 4));
        let got = sq8_search(&q, &[&empty, &full, &empty], 5, StepPolicy::default());
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn kernel_policies_are_bit_identical_end_to_end() {
        // The full pruned quantized search — not just one kernel call —
        // must produce identical bits under every policy.
        let (n, d, c) = (500, 20, 15);
        let rows = make_rows(n, d, 42);
        let qz = Sq8Quantizer::fit(&rows, n, d);
        let blocks = make_blocks(&rows, n, d, 64, 32, &qz);
        let refs: Vec<&Sq8Block> = blocks.iter().collect();
        let raw_q = make_rows(1, d, 9);
        for metric in [Metric::L2, Metric::L1, Metric::NegativeIp] {
            let q = qz.prepare_query(metric, &raw_q);
            let a = sq8_search_policy(&q, &refs, c, StepPolicy::default(), KernelPolicy::Scalar);
            let b = sq8_search_policy(&q, &refs, c, StepPolicy::default(), KernelPolicy::Simd);
            let ab: Vec<(u64, u32)> = a.iter().map(|x| (x.id, x.distance.to_bits())).collect();
            let bb: Vec<(u64, u32)> = b.iter().map(|x| (x.id, x.distance.to_bits())).collect();
            assert_eq!(ab, bb, "{metric:?}");
        }
    }

    #[test]
    fn candidate_count_larger_than_collection_returns_everything() {
        let d = 4;
        let rows = make_rows(9, d, 8);
        let qz = Sq8Quantizer::fit(&rows, 9, d);
        let blocks = make_blocks(&rows, 9, d, 4, 4, &qz);
        let refs: Vec<&Sq8Block> = blocks.iter().collect();
        let q = qz.prepare_query(Metric::L2, &make_rows(1, d, 3));
        let got = sq8_search(&q, &refs, 50, StepPolicy::default());
        assert_eq!(got.len(), 9);
    }
}
