//! Exhaustive linear scans — the non-pruning baselines of the paper.
//!
//! * [`linear_scan_pdx`] / [`linear_scan_blocks`] — the PDX linear scan
//!   ("PDX-LINEAR-SCAN" in Figures 9 and 11): full distances via the
//!   auto-vectorizing PDX kernels, no pruning.
//! * [`linear_scan_nary`] — the horizontal scan; with
//!   [`KernelVariant::Simd`] this is the FAISS/USearch stand-in, with
//!   [`KernelVariant::Scalar`] the Scikit-learn stand-in.
//! * [`linear_scan_dsm`] — the fully decomposed scan of §7.

use crate::collection::{PdxCollection, SearchBlock};
use crate::distance::Metric;
use crate::heap::{KnnHeap, Neighbor};
use crate::kernels::dsm::dsm_scan;
use crate::kernels::nary::{nary_distance, KernelVariant};
use crate::kernels::pdx::pdx_accumulate;
use crate::layout::{DsmMatrix, NaryMatrix};

/// Exhaustive k-NN over a PDX collection.
pub fn linear_scan_pdx(
    coll: &PdxCollection,
    query: &[f32],
    k: usize,
    metric: Metric,
) -> Vec<Neighbor> {
    let blocks: Vec<&SearchBlock> = coll.blocks.iter().collect();
    linear_scan_blocks(&blocks, query, k, metric)
}

/// Exhaustive k-NN over an explicit list of PDX blocks (IVF probes a
/// subset — this is the "IVF_FLAT with PDX kernels" baseline).
pub fn linear_scan_blocks(
    blocks: &[&SearchBlock],
    query: &[f32],
    k: usize,
    metric: Metric,
) -> Vec<Neighbor> {
    let mut heap = KnnHeap::new(k);
    let mut distances: Vec<f32> = Vec::new();
    for block in blocks {
        if block.is_empty() {
            continue;
        }
        let dims = block.pdx.dims();
        assert_eq!(query.len(), dims, "query dimensionality mismatch");
        distances.clear();
        distances.resize(block.len(), 0.0);
        for g in block.pdx.groups() {
            let acc = &mut distances[g.start_vector..g.start_vector + g.lanes];
            pdx_accumulate(metric, &g, query, 0..dims, acc);
        }
        for (i, &d) in distances.iter().enumerate() {
            heap.push(block.row_ids[i], d);
        }
    }
    heap.into_sorted()
}

/// Exhaustive k-NN over a horizontal collection with the chosen kernel
/// tier. Vector `i` is reported with id `i`.
pub fn linear_scan_nary(
    nary: &NaryMatrix,
    query: &[f32],
    k: usize,
    metric: Metric,
    variant: KernelVariant,
) -> Vec<Neighbor> {
    assert_eq!(query.len(), nary.dims(), "query dimensionality mismatch");
    let mut heap = KnnHeap::new(k);
    for (i, row) in nary.rows().enumerate() {
        heap.push(i as u64, nary_distance(metric, variant, query, row));
    }
    heap.into_sorted()
}

/// Exhaustive k-NN over a DSM collection. Vector `i` is reported with
/// id `i`.
pub fn linear_scan_dsm(dsm: &DsmMatrix, query: &[f32], k: usize, metric: Metric) -> Vec<Neighbor> {
    let mut distances = vec![0.0f32; dsm.len()];
    dsm_scan(metric, dsm, query, &mut distances);
    let mut heap = KnnHeap::new(k);
    for (i, &d) in distances.iter().enumerate() {
        heap.push(i as u64, d);
    }
    heap.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::distance_scalar;

    fn rows(n: usize, d: usize) -> Vec<f32> {
        (0..n * d)
            .map(|i| ((i * 29 % 83) as f32) * 0.3 - 10.0)
            .collect()
    }

    fn brute(rows: &[f32], d: usize, q: &[f32], k: usize, metric: Metric) -> Vec<u64> {
        let mut heap = KnnHeap::new(k);
        for (i, row) in rows.chunks_exact(d).enumerate() {
            heap.push(i as u64, distance_scalar(metric, q, row));
        }
        heap.into_sorted().iter().map(|n| n.id).collect()
    }

    #[test]
    fn all_layouts_agree_with_brute_force() {
        let (n, d, k) = (211, 19, 7);
        let data = rows(n, d);
        let q: Vec<f32> = (0..d).map(|i| (i as f32).sin()).collect();
        for metric in [Metric::L2, Metric::L1, Metric::NegativeIp] {
            let want = brute(&data, d, &q, k, metric);
            let coll = PdxCollection::from_rows_partitioned(&data, n, d, 50, 16);
            let got_pdx: Vec<u64> = linear_scan_pdx(&coll, &q, k, metric)
                .iter()
                .map(|x| x.id)
                .collect();
            assert_eq!(got_pdx, want, "pdx {metric:?}");

            let nary = NaryMatrix::from_rows(&data, n, d);
            for variant in [
                KernelVariant::Scalar,
                KernelVariant::Unrolled,
                KernelVariant::Simd,
            ] {
                let got: Vec<u64> = linear_scan_nary(&nary, &q, k, metric, variant)
                    .iter()
                    .map(|x| x.id)
                    .collect();
                assert_eq!(got, want, "nary {metric:?} {variant:?}");
            }

            let dsm = DsmMatrix::from_rows(&data, n, d);
            let got_dsm: Vec<u64> = linear_scan_dsm(&dsm, &q, k, metric)
                .iter()
                .map(|x| x.id)
                .collect();
            assert_eq!(got_dsm, want, "dsm {metric:?}");
        }
    }

    #[test]
    fn subset_of_blocks_restricts_candidates() {
        let (n, d) = (40, 5);
        let data = rows(n, d);
        let coll = PdxCollection::from_rows_partitioned(&data, n, d, 10, 4);
        let blocks: Vec<&SearchBlock> = coll.blocks[..2].iter().collect();
        let q = vec![0.0f32; d];
        let got = linear_scan_blocks(&blocks, &q, 100, Metric::L2);
        assert_eq!(got.len(), 20);
        assert!(got.iter().all(|r| r.id < 20));
    }
}
