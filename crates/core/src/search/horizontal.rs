//! Vector-at-a-time pruned search on the horizontal dual-block layout —
//! the paper's SIMD-ADS / SCALAR-ADS / N-ary-BSA baselines.
//!
//! This is how ADSampling and BSA were originally deployed: for each
//! vector, accumulate Δd dimensions, evaluate the bound, branch. The
//! interleaving of distance work and bound checks is exactly what §6.3
//! blames for the 4× branch-misprediction overhead that lets plain SIMD
//! linear scans win — the effect PDXearch removes.

use crate::distance::Metric;
use crate::heap::{KnnHeap, Neighbor};
use crate::kernels::nary::{nary_distance, KernelVariant};
use crate::layout::DualBlockMatrix;
use crate::pruning::{BlockAux, Pruner};

/// One horizontal search unit (an IVF bucket or a whole collection) in
/// ADSampling's dual-block layout.
#[derive(Debug, Clone)]
pub struct HorizontalBucket {
    /// The vectors, split at Δd.
    pub dual: DualBlockMatrix,
    /// Global id of each vector.
    pub row_ids: Vec<u64>,
    /// Optional per-vector, per-checkpoint pruner data (BSA residual
    /// norms), with checkpoints at `split, split+Δd, split+2Δd, …`.
    pub aux: Option<BlockAux>,
}

impl HorizontalBucket {
    /// Builds a bucket from row-major data, splitting at `delta_d`
    /// (clamped to the dimensionality).
    pub fn new(rows: &[f32], ids: Vec<u64>, n_dims: usize, delta_d: usize) -> Self {
        let split = delta_d.clamp(1, n_dims);
        let dual = DualBlockMatrix::from_rows(rows, ids.len(), n_dims, split);
        Self {
            dual,
            row_ids: ids,
            aux: None,
        }
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.dual.len()
    }

    /// Whether the bucket is empty.
    pub fn is_empty(&self) -> bool {
        self.dual.is_empty()
    }
}

/// The fixed checkpoint schedule of the horizontal search: dimensions
/// scanned after the head segment and after each Δd tail step.
pub fn horizontal_checkpoints(dims: usize, split: usize, delta_d: usize) -> Vec<usize> {
    let mut out = vec![split.min(dims)];
    let step = delta_d.max(1);
    let mut at = split;
    while at < dims {
        at = (at + step).min(dims);
        out.push(at);
    }
    out.dedup();
    out
}

/// Pruned vector-at-a-time k-NN over dual-block buckets.
///
/// `delta_d` is the bound-evaluation period on the tail segment; the
/// first bucket effectively gets a linear scan because the heap threshold
/// is infinite until `k` candidates exist.
pub fn horizontal_pruned_search<P: Pruner>(
    pruner: &P,
    buckets: &[&HorizontalBucket],
    query: &[f32],
    k: usize,
    delta_d: usize,
    variant: KernelVariant,
) -> Vec<Neighbor> {
    let q = pruner.prepare_query(query);
    horizontal_pruned_search_prepared(pruner, &q, buckets, k, delta_d, variant)
}

/// Prepared-query variant of [`horizontal_pruned_search`] (the IVF layer
/// prepares once and probes centroids with the transformed vector).
pub fn horizontal_pruned_search_prepared<P: Pruner>(
    pruner: &P,
    q: &P::Query,
    buckets: &[&HorizontalBucket],
    k: usize,
    delta_d: usize,
    variant: KernelVariant,
) -> Vec<Neighbor> {
    let qvec = pruner.query_vector(q);
    let metric = pruner.metric();
    let mut heap = KnnHeap::new(k);
    for bucket in buckets {
        if bucket.is_empty() {
            continue;
        }
        let dims = bucket.dual.dims();
        assert_eq!(qvec.len(), dims, "query dimensionality mismatch");
        let split = bucket.dual.split();
        let sched = horizontal_checkpoints(dims, split, delta_d);
        // Resolve aux rows per checkpoint once per bucket.
        let aux_rows: Vec<Option<&[f32]>> = sched
            .iter()
            .map(|&scanned| {
                if !P::NEEDS_AUX || scanned == dims {
                    None
                } else {
                    let aux = bucket
                        .aux
                        .as_ref()
                        .expect("pruner requires aux data, but the bucket has none");
                    let ci = aux
                        .index_of(scanned)
                        .unwrap_or_else(|| panic!("no aux checkpoint at dims_scanned = {scanned}"));
                    Some(aux.row(ci))
                }
            })
            .collect();

        let q_head = &qvec[..split];
        let q_tail = &qvec[split..];
        'vectors: for v in 0..bucket.len() {
            // Head segment: always scanned (the dual-block design).
            let mut partial = nary_distance(metric, variant, q_head, bucket.dual.head_row(v));
            let mut scanned = split;
            let tail = bucket.dual.tail_row(v);
            for (ci, &ck) in sched.iter().enumerate() {
                if ck > scanned {
                    let lo = scanned - split;
                    let hi = ck - split;
                    partial += nary_distance(metric, variant, &q_tail[lo..hi], &tail[lo..hi]);
                    scanned = ck;
                }
                if scanned == dims {
                    break;
                }
                // Interleaved bound evaluation (the branchy baseline).
                let cp = pruner.checkpoint(q, scanned, dims, heap.threshold());
                let a = aux_rows[ci].map_or(0.0, |r| r[v]);
                if !P::survives(&cp, partial, a) {
                    continue 'vectors;
                }
            }
            heap.push(bucket.row_ids[v], partial);
        }
    }
    heap.into_sorted()
}

/// Profiled variant of [`horizontal_pruned_search_prepared`]: splits
/// wall time into distance work and bound evaluation for the Table 7
/// breakdown. Timer calls sit inside the per-vector loop (that
/// interleaving *is* the baseline's design), so absolute numbers carry
/// some timer overhead; the phase shares are what the table reports.
pub fn horizontal_pruned_search_profiled<P: Pruner>(
    pruner: &P,
    q: &P::Query,
    buckets: &[&HorizontalBucket],
    k: usize,
    delta_d: usize,
    variant: KernelVariant,
    profile: &mut crate::profile::SearchProfile,
) -> Vec<Neighbor> {
    use std::time::Instant;
    let qvec = pruner.query_vector(q);
    let metric = pruner.metric();
    let mut heap = KnnHeap::new(k);
    for bucket in buckets {
        if bucket.is_empty() {
            continue;
        }
        let dims = bucket.dual.dims();
        let split = bucket.dual.split();
        let sched = horizontal_checkpoints(dims, split, delta_d);
        let aux_rows: Vec<Option<&[f32]>> = sched
            .iter()
            .map(|&scanned| {
                if !P::NEEDS_AUX || scanned == dims {
                    None
                } else {
                    let aux = bucket.aux.as_ref().expect("pruner requires aux data");
                    Some(aux.row(aux.index_of(scanned).expect("aux checkpoint missing")))
                }
            })
            .collect();
        let q_head = &qvec[..split];
        let q_tail = &qvec[split..];
        'vectors: for v in 0..bucket.len() {
            let t0 = Instant::now();
            let mut partial = nary_distance(metric, variant, q_head, bucket.dual.head_row(v));
            let mut scanned = split;
            let tail = bucket.dual.tail_row(v);
            profile.distance_ns += t0.elapsed().as_nanos() as u64;
            for (ci, &ck) in sched.iter().enumerate() {
                if ck > scanned {
                    let t1 = Instant::now();
                    let lo = scanned - split;
                    let hi = ck - split;
                    partial += nary_distance(metric, variant, &q_tail[lo..hi], &tail[lo..hi]);
                    scanned = ck;
                    profile.distance_ns += t1.elapsed().as_nanos() as u64;
                }
                if scanned == dims {
                    break;
                }
                let t2 = Instant::now();
                let cp = pruner.checkpoint(q, scanned, dims, heap.threshold());
                let a = aux_rows[ci].map_or(0.0, |r| r[v]);
                let keep = P::survives(&cp, partial, a);
                profile.bounds_ns += t2.elapsed().as_nanos() as u64;
                if !keep {
                    continue 'vectors;
                }
            }
            heap.push(bucket.row_ids[v], partial);
        }
    }
    heap.into_sorted()
}

/// Non-pruning linear scan over dual-block buckets (the FAISS/Milvus
/// IVF_FLAT stand-ins run on plain horizontal data; this entry point
/// exists so every competitor shares identical bucket contents).
pub fn horizontal_linear_scan(
    buckets: &[&HorizontalBucket],
    query: &[f32],
    k: usize,
    metric: Metric,
    variant: KernelVariant,
) -> Vec<Neighbor> {
    let mut heap = KnnHeap::new(k);
    for bucket in buckets {
        let dims = bucket.dual.dims();
        assert_eq!(query.len(), dims, "query dimensionality mismatch");
        let split = bucket.dual.split();
        let q_head = &query[..split];
        let q_tail = &query[split..];
        for v in 0..bucket.len() {
            let d = nary_distance(metric, variant, q_head, bucket.dual.head_row(v))
                + nary_distance(metric, variant, q_tail, bucket.dual.tail_row(v));
            heap.push(bucket.row_ids[v], d);
        }
    }
    heap.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bond::PdxBond;
    use crate::distance::distance_scalar;
    use crate::visit_order::VisitOrder;

    fn rows(n: usize, d: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n * d)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 6.0 - 3.0
            })
            .collect()
    }

    fn brute(data: &[f32], d: usize, q: &[f32], k: usize) -> Vec<u64> {
        let mut heap = KnnHeap::new(k);
        for (i, row) in data.chunks_exact(d).enumerate() {
            heap.push(i as u64, distance_scalar(Metric::L2, q, row));
        }
        heap.into_sorted().iter().map(|n| n.id).collect()
    }

    #[test]
    fn checkpoints_cover_head_and_tail() {
        assert_eq!(horizontal_checkpoints(100, 32, 32), vec![32, 64, 96, 100]);
        assert_eq!(horizontal_checkpoints(32, 32, 32), vec![32]);
        assert_eq!(horizontal_checkpoints(8, 4, 2), vec![4, 6, 8]);
    }

    #[test]
    fn pruned_search_with_exact_bound_equals_brute_force() {
        let (n, d, k, dd) = (350, 30, 8, 8);
        let data = rows(n, d, 5);
        // Two buckets sharing the collection.
        let b0 = HorizontalBucket::new(&data[..150 * d], (0..150).collect(), d, dd);
        let b1 = HorizontalBucket::new(&data[150 * d..], (150..n as u64).collect(), d, dd);
        let q = rows(1, d, 50);
        // PDX-BOND's bound (partial ≤ threshold) is exact, so the
        // horizontal searcher must return the true k-NN.
        let bond = PdxBond::new(Metric::L2, VisitOrder::Sequential);
        for variant in [KernelVariant::Scalar, KernelVariant::Simd] {
            let got = horizontal_pruned_search(&bond, &[&b0, &b1], &q, k, dd, variant);
            let ids: Vec<u64> = got.iter().map(|x| x.id).collect();
            assert_eq!(ids, brute(&data, d, &q, k), "{variant:?}");
        }
    }

    #[test]
    fn linear_scan_matches_brute_force() {
        let (n, d, k) = (200, 17, 6);
        let data = rows(n, d, 9);
        let b = HorizontalBucket::new(&data, (0..n as u64).collect(), d, 4);
        let q = rows(1, d, 77);
        let got = horizontal_linear_scan(&[&b], &q, k, Metric::L2, KernelVariant::Unrolled);
        let ids: Vec<u64> = got.iter().map(|x| x.id).collect();
        assert_eq!(ids, brute(&data, d, &q, k));
    }

    #[test]
    fn split_larger_than_dims_is_clamped() {
        let data = rows(10, 6, 2);
        let b = HorizontalBucket::new(&data, (0..10).collect(), 6, 100);
        assert_eq!(b.dual.split(), 6);
        let q = rows(1, 6, 3);
        let bond = PdxBond::new(Metric::L2, VisitOrder::Sequential);
        let got = horizontal_pruned_search(&bond, &[&b], &q, 3, 100, KernelVariant::Scalar);
        assert_eq!(got.len(), 3);
    }
}
