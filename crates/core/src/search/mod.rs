//! Search algorithms over every layout.
//!
//! * [`pdxearch`] — the PDXearch framework (§4): block-by-block,
//!   dimension-by-dimension pruned search with START/WARMUP/PRUNE phases.
//! * `linear` — exhaustive linear scans on the PDX, horizontal and DSM
//!   layouts (the paper's FAISS-like / Scikit-learn-like / DSM baselines),
//!   re-exported here as [`linear_scan_pdx`] and friends.
//! * `horizontal` — the vector-at-a-time pruned search on ADSampling's
//!   dual-block horizontal layout (the SIMD-ADS / SCALAR-ADS baselines,
//!   with bound evaluation interleaved every Δd dimensions), re-exported
//!   as [`horizontal_pruned_search`] and friends.
//! * [`quantized`] — the two-phase SQ8 path: a quantized PDXearch scan
//!   producing candidates, then an exact `f32` rerank.

mod horizontal;
mod linear;
#[allow(clippy::module_inception)]
mod pdxearch;
pub mod quantized;

pub use horizontal::{
    horizontal_checkpoints, horizontal_linear_scan, horizontal_pruned_search,
    horizontal_pruned_search_prepared, horizontal_pruned_search_profiled, HorizontalBucket,
};
pub use linear::{linear_scan_blocks, linear_scan_dsm, linear_scan_nary, linear_scan_pdx};
pub use pdxearch::{
    pdxearch, pdxearch_prepared, pdxearch_prepared_profiled, pdxearch_profiled, pdxearch_streamed,
    SearchParams,
};
pub use quantized::{
    sq8_rerank, sq8_search, sq8_search_policy, sq8_two_phase, sq8_two_phase_policy, Sq8Block,
    DEFAULT_REFINE,
};

pub use crate::kernels::{KernelIsa, KernelPolicy, KernelVariant};
