//! The PDXearch framework (§4): adaptive, dimension-by-dimension pruned
//! search over PDX blocks.
//!
//! A query walks the blocks in caller-decided order (IVF: by centroid
//! distance; exact search: storage order). The phases:
//!
//! * **START** — while the heap holds fewer than `k` candidates there is
//!   no threshold, so blocks are scanned linearly (all dimensions, all
//!   vectors). In practice this is just the first block.
//! * **WARMUP** — partial distances are accumulated for *all* vectors of
//!   the block at exponentially growing dimension steps; after each step
//!   the pruning bound is evaluated in a separate branch-free pass that
//!   only *counts* survivors (computing distances for pruned vectors is
//!   still cheaper than random access while many survive).
//! * **PRUNE** — once the surviving fraction drops below the selection
//!   threshold (default 20 %, Figure 10), survivor positions are
//!   compacted and further distance accumulation touches only them.
//!
//! The framework preserves the underlying pruner's guarantees: it never
//! drops a vector the pruner would have kept, it only chooses *when*
//! bounds are evaluated and *which* vectors still get distance work.

use crate::collection::SearchBlock;
use crate::heap::{KnnHeap, Neighbor};
use crate::kernels::dispatch::KernelPolicy;
use crate::kernels::pdx::{
    pdx_accumulate_permuted_policy, pdx_accumulate_policy,
    pdx_accumulate_positions_permuted_policy, pdx_accumulate_positions_policy,
};
use crate::profile::SearchProfile;
use crate::pruning::{checkpoints, Pruner, StepPolicy};
use std::time::Instant;

/// Tuning knobs of a PDXearch run.
#[derive(Debug, Clone, Copy)]
pub struct SearchParams {
    /// Number of neighbours to return.
    pub k: usize,
    /// Fraction of not-yet-pruned vectors below which the PRUNE phase
    /// starts (the paper's sweet spot is 0.20).
    pub selection_fraction: f32,
    /// Dimension fetching schedule.
    pub step: StepPolicy,
    /// Kernel implementation policy (scalar oracle vs explicit SIMD).
    /// Distances are bit-identical either way.
    pub kernel: KernelPolicy,
}

impl SearchParams {
    /// Paper-default parameters for a given `k`.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            selection_fraction: 0.20,
            step: StepPolicy::default(),
            kernel: KernelPolicy::Auto,
        }
    }

    /// Replaces the step policy.
    pub fn with_step(mut self, step: StepPolicy) -> Self {
        self.step = step;
        self
    }

    /// Replaces the selection fraction.
    pub fn with_selection_fraction(mut self, f: f32) -> Self {
        self.selection_fraction = f;
        self
    }

    /// Replaces the kernel policy.
    pub fn with_kernel(mut self, kernel: KernelPolicy) -> Self {
        self.kernel = kernel;
        self
    }
}

/// Runs PDXearch over `blocks` in the given order.
///
/// # Panics
/// Panics if `query.len()` differs from the blocks' dimensionality or if
/// `params.k == 0`.
pub fn pdxearch<P: Pruner>(
    pruner: &P,
    blocks: &[&SearchBlock],
    query: &[f32],
    params: &SearchParams,
) -> Vec<Neighbor> {
    let mut profile = SearchProfile::default();
    let t0 = Instant::now();
    let q = pruner.prepare_query(query);
    profile.preprocess_ns += t0.elapsed().as_nanos() as u64;
    run::<P, false>(pruner, &q, blocks, params, &mut profile)
}

/// Like [`pdxearch`] but accumulates per-phase timings into `profile`
/// (Table 7). A separate monomorphization, so the unprofiled path pays no
/// timer cost.
pub fn pdxearch_profiled<P: Pruner>(
    pruner: &P,
    blocks: &[&SearchBlock],
    query: &[f32],
    params: &SearchParams,
    profile: &mut SearchProfile,
) -> Vec<Neighbor> {
    let t0 = Instant::now();
    let q = pruner.prepare_query(query);
    profile.preprocess_ns += t0.elapsed().as_nanos() as u64;
    run::<P, true>(pruner, &q, blocks, params, profile)
}

/// Runs PDXearch with an already-prepared query (the IVF layer prepares
/// once, probes centroids with the transformed vector, then searches —
/// avoiding a second rotation).
pub fn pdxearch_prepared<P: Pruner>(
    pruner: &P,
    q: &P::Query,
    blocks: &[&SearchBlock],
    params: &SearchParams,
) -> Vec<Neighbor> {
    let mut profile = SearchProfile::default();
    run::<P, false>(pruner, q, blocks, params, &mut profile)
}

/// [`pdxearch_prepared`] over a block *stream* instead of a slice: the
/// next block is pulled only when the scan reaches it, and each item is
/// dropped as soon as its block is scanned. Out-of-core deployments use
/// this to overlap bucket loading with the scan — the iterator yields
/// `Arc<SearchBlock>` pins that stay alive exactly as long as the scan
/// needs them. The accumulation order is the slice path's, so results
/// are bit-identical to [`pdxearch_prepared`] over the same blocks.
pub fn pdxearch_streamed<P, B, I>(
    pruner: &P,
    q: &P::Query,
    blocks: I,
    params: &SearchParams,
) -> Vec<Neighbor>
where
    P: Pruner,
    B: std::borrow::Borrow<SearchBlock>,
    I: IntoIterator<Item = B>,
{
    let mut profile = SearchProfile::default();
    run_iter::<P, false, _, _>(pruner, q, blocks, params, &mut profile)
}

/// Prepared-query variant with per-phase timings.
pub fn pdxearch_prepared_profiled<P: Pruner>(
    pruner: &P,
    q: &P::Query,
    blocks: &[&SearchBlock],
    params: &SearchParams,
    profile: &mut SearchProfile,
) -> Vec<Neighbor> {
    run::<P, true>(pruner, q, blocks, params, profile)
}

/// Reusable per-query buffers.
#[derive(Default)]
struct Scratch {
    /// WARMUP partial distances, one per block vector.
    partials: Vec<f32>,
    /// PRUNE-phase survivor positions (block-relative).
    positions: Vec<u32>,
    /// PRUNE-phase compacted partial distances (parallel to positions).
    compact: Vec<f32>,
    /// Group-relative lane ids for the positions kernel.
    lane_ids: Vec<u32>,
}

#[inline(always)]
fn timer<const PROFILE: bool>() -> Option<Instant> {
    if PROFILE {
        Some(Instant::now())
    } else {
        None
    }
}

#[inline(always)]
fn lap(slot: &mut u64, t: Option<Instant>) {
    if let Some(t0) = t {
        *slot += t0.elapsed().as_nanos() as u64;
    }
}

fn run<P: Pruner, const PROFILE: bool>(
    pruner: &P,
    q: &P::Query,
    blocks: &[&SearchBlock],
    params: &SearchParams,
    profile: &mut SearchProfile,
) -> Vec<Neighbor> {
    run_iter::<P, PROFILE, _, _>(pruner, q, blocks.iter().copied(), params, profile)
}

fn run_iter<P, const PROFILE: bool, B, I>(
    pruner: &P,
    q: &P::Query,
    blocks: I,
    params: &SearchParams,
    profile: &mut SearchProfile,
) -> Vec<Neighbor>
where
    P: Pruner,
    B: std::borrow::Borrow<SearchBlock>,
    I: IntoIterator<Item = B>,
{
    assert!(params.k > 0, "k must be positive");
    let qdims = pruner.query_vector(q).len();
    let mut heap = KnnHeap::new(params.k);
    let mut scratch = Scratch::default();
    let mut ckpts: Vec<usize> = Vec::new();
    let mut ckpt_dims = usize::MAX;

    for block in blocks {
        let block = block.borrow();
        if block.is_empty() {
            continue;
        }
        let dims = block.pdx.dims();
        assert_eq!(qdims, dims, "query dimensionality mismatch");
        if PROFILE {
            // Work counters for the pruning-effectiveness ratio:
            // `dims_total` is what a full scan of the visited blocks
            // would read; the scan functions below add what was read.
            profile.blocks += 1;
            profile.vectors += block.len() as u64;
            profile.dims_total += (block.len() * dims) as u64;
        }
        // The per-block dimension visit order is applied in *every*
        // phase — including the START linear scan — so a vector's
        // accumulated distance is a pure function of its block, not of
        // which phase happened to scan it. This is what lets a
        // block-range split (crate::exec) reproduce the sequential
        // distances bit-for-bit: each worker's leading blocks run START
        // while sequentially they would have run WARMUP/PRUNE, but the
        // accumulation order (and hence the f32 rounding) is identical.
        let t1 = timer::<PROFILE>();
        let perm = pruner.dim_order(q, Some(&block.stats));
        lap(&mut profile.preprocess_ns, t1);
        if heap.len() < params.k {
            // START: no threshold yet — full linear scan of this block.
            scan_block_linear::<P, PROFILE>(
                pruner,
                q,
                block,
                perm.as_deref(),
                params.kernel,
                &mut heap,
                &mut scratch,
                profile,
            );
            continue;
        }
        if ckpt_dims != dims {
            ckpts = checkpoints(params.step, dims);
            ckpt_dims = dims;
        }
        scan_block_pruned::<P, PROFILE>(
            pruner,
            q,
            block,
            perm.as_deref(),
            &ckpts,
            params,
            &mut heap,
            &mut scratch,
            profile,
        );
    }
    heap.into_sorted()
}

/// Full linear scan of one block; every distance is offered to the
/// heap. Accumulates in the block's permuted dimension order when the
/// pruner has one, matching the WARMUP/PRUNE phases exactly.
#[allow(clippy::too_many_arguments)]
fn scan_block_linear<P: Pruner, const PROFILE: bool>(
    pruner: &P,
    q: &P::Query,
    block: &SearchBlock,
    perm: Option<&[u32]>,
    kernel: KernelPolicy,
    heap: &mut KnnHeap,
    scratch: &mut Scratch,
    profile: &mut SearchProfile,
) {
    let metric = pruner.metric();
    let qvec = pruner.query_vector(q);
    let dims = block.pdx.dims();
    let n = block.len();
    let t0 = timer::<PROFILE>();
    scratch.partials.clear();
    scratch.partials.resize(n, 0.0);
    for g in block.pdx.groups() {
        let acc = &mut scratch.partials[g.start_vector..g.start_vector + g.lanes];
        match perm {
            None => pdx_accumulate_policy(metric, &g, qvec, 0..dims, acc, kernel),
            Some(p) => pdx_accumulate_permuted_policy(metric, &g, qvec, p, acc, kernel),
        }
    }
    for (i, &d) in scratch.partials.iter().enumerate() {
        heap.push(block.row_ids[i], d);
    }
    lap(&mut profile.distance_ns, t0);
    if PROFILE {
        profile.dims_scanned += (n * dims) as u64;
    }
}

/// WARMUP + PRUNE scan of one block.
#[allow(clippy::too_many_arguments)]
fn scan_block_pruned<P: Pruner, const PROFILE: bool>(
    pruner: &P,
    q: &P::Query,
    block: &SearchBlock,
    perm: Option<&[u32]>,
    ckpts: &[usize],
    params: &SearchParams,
    heap: &mut KnnHeap,
    scratch: &mut Scratch,
    profile: &mut SearchProfile,
) {
    let metric = pruner.metric();
    let qvec = pruner.query_vector(q);
    let dims = block.pdx.dims();
    let n = block.len();
    let sel_limit = ((n as f32) * params.selection_fraction).ceil() as usize;

    scratch.partials.clear();
    scratch.partials.resize(n, 0.0);
    let mut scanned = 0usize;
    let mut pruning = false;

    for &ck in ckpts {
        if !pruning {
            // WARMUP: distance work for every vector.
            let t0 = timer::<PROFILE>();
            for g in block.pdx.groups() {
                let acc = &mut scratch.partials[g.start_vector..g.start_vector + g.lanes];
                match perm {
                    None => {
                        pdx_accumulate_policy(metric, &g, qvec, scanned..ck, acc, params.kernel)
                    }
                    Some(p) => pdx_accumulate_permuted_policy(
                        metric,
                        &g,
                        qvec,
                        &p[scanned..ck],
                        acc,
                        params.kernel,
                    ),
                }
            }
            lap(&mut profile.distance_ns, t0);
            if PROFILE {
                profile.dims_scanned += ((ck - scanned) * n) as u64;
            }
            scanned = ck;
            if scanned == dims {
                let t1 = timer::<PROFILE>();
                for (i, &d) in scratch.partials.iter().enumerate() {
                    heap.push(block.row_ids[i], d);
                }
                lap(&mut profile.distance_ns, t1);
                return;
            }
            // Bound evaluation: branch-free survivor count.
            let t2 = timer::<PROFILE>();
            let cp = pruner.checkpoint(q, scanned, dims, heap.threshold());
            let aux_row = aux_row::<P>(block, scanned);
            let survivors = match aux_row {
                Some(aux) => scratch
                    .partials
                    .iter()
                    .zip(aux)
                    .map(|(&p, &a)| P::survives(&cp, p, a) as usize)
                    .sum::<usize>(),
                None => scratch
                    .partials
                    .iter()
                    .map(|&p| P::survives(&cp, p, 0.0) as usize)
                    .sum::<usize>(),
            };
            if survivors <= sel_limit {
                // Switch to PRUNE: compact survivor positions + partials.
                scratch.positions.clear();
                scratch.compact.clear();
                match aux_row {
                    Some(aux) => {
                        for (i, (&p, &a)) in scratch.partials.iter().zip(aux).enumerate() {
                            if P::survives(&cp, p, a) {
                                scratch.positions.push(i as u32);
                                scratch.compact.push(p);
                            }
                        }
                    }
                    None => {
                        for (i, &p) in scratch.partials.iter().enumerate() {
                            if P::survives(&cp, p, 0.0) {
                                scratch.positions.push(i as u32);
                                scratch.compact.push(p);
                            }
                        }
                    }
                }
                pruning = true;
            }
            lap(&mut profile.bounds_ns, t2);
            if pruning && scratch.positions.is_empty() {
                return;
            }
        } else {
            // PRUNE: distance work only at survivor positions.
            let t0 = timer::<PROFILE>();
            accumulate_survivors(
                metric,
                block,
                qvec,
                perm,
                scanned,
                ck,
                params.kernel,
                scratch,
            );
            lap(&mut profile.distance_ns, t0);
            if PROFILE {
                profile.dims_scanned += ((ck - scanned) * scratch.positions.len()) as u64;
            }
            scanned = ck;
            if scanned == dims {
                let t1 = timer::<PROFILE>();
                for (j, &pos) in scratch.positions.iter().enumerate() {
                    heap.push(block.row_ids[pos as usize], scratch.compact[j]);
                }
                lap(&mut profile.distance_ns, t1);
                return;
            }
            let t2 = timer::<PROFILE>();
            let cp = pruner.checkpoint(q, scanned, dims, heap.threshold());
            let aux_row = aux_row::<P>(block, scanned);
            let mut w = 0usize;
            for j in 0..scratch.positions.len() {
                let pos = scratch.positions[j];
                let a = aux_row.map_or(0.0, |r| r[pos as usize]);
                let keep = P::survives(&cp, scratch.compact[j], a);
                scratch.positions[w] = pos;
                scratch.compact[w] = scratch.compact[j];
                w += keep as usize;
            }
            scratch.positions.truncate(w);
            scratch.compact.truncate(w);
            lap(&mut profile.bounds_ns, t2);
            if scratch.positions.is_empty() {
                return;
            }
        }
    }
}

/// The aux row for a checkpoint, when the pruner consumes one.
#[inline]
fn aux_row<P: Pruner>(block: &SearchBlock, scanned: usize) -> Option<&[f32]> {
    if !P::NEEDS_AUX {
        return None;
    }
    let aux = block
        .aux
        .as_ref()
        .expect("pruner requires per-block aux data, but the block has none");
    let ci = aux.index_of(scanned).unwrap_or_else(|| {
        panic!("no aux checkpoint for dims_scanned = {scanned}; was the block preprocessed with the same step policy?")
    });
    Some(aux.row(ci))
}

/// PRUNE-phase accumulation: walks the (sorted) survivor positions one
/// group run at a time so the kernel gathers lanes within a cached group.
#[allow(clippy::too_many_arguments)]
fn accumulate_survivors(
    metric: crate::distance::Metric,
    block: &SearchBlock,
    qvec: &[f32],
    perm: Option<&[u32]>,
    scanned: usize,
    ck: usize,
    kernel: KernelPolicy,
    scratch: &mut Scratch,
) {
    let gsize = block.pdx.group_size();
    let positions = &scratch.positions;
    let compact = &mut scratch.compact;
    let lane_ids = &mut scratch.lane_ids;
    let mut j0 = 0usize;
    while j0 < positions.len() {
        let g_idx = positions[j0] as usize / gsize;
        let mut j1 = j0 + 1;
        while j1 < positions.len() && positions[j1] as usize / gsize == g_idx {
            j1 += 1;
        }
        let g = block.pdx.group(g_idx);
        lane_ids.clear();
        lane_ids.extend(positions[j0..j1].iter().map(|&p| p - g.start_vector as u32));
        let acc = &mut compact[j0..j1];
        match perm {
            None => pdx_accumulate_positions_policy(
                metric,
                &g,
                qvec,
                scanned..ck,
                lane_ids,
                acc,
                kernel,
            ),
            Some(p) => pdx_accumulate_positions_permuted_policy(
                metric,
                &g,
                qvec,
                &p[scanned..ck],
                lane_ids,
                acc,
                kernel,
            ),
        }
        j0 = j1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bond::PdxBond;
    use crate::collection::PdxCollection;
    use crate::distance::{distance_scalar, Metric};
    use crate::visit_order::VisitOrder;

    fn make_rows(n: usize, d: usize, seed: u64) -> Vec<f32> {
        // Deterministic pseudo-random data without pulling rand into the
        // unit test (integration tests use rand).
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..n * d)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 4.0 - 2.0
            })
            .collect()
    }

    fn brute_force(rows: &[f32], d: usize, q: &[f32], k: usize, metric: Metric) -> Vec<Neighbor> {
        let mut heap = KnnHeap::new(k);
        for (i, row) in rows.chunks_exact(d).enumerate() {
            heap.push(i as u64, distance_scalar(metric, q, row));
        }
        heap.into_sorted()
    }

    fn ids(r: &[Neighbor]) -> Vec<u64> {
        r.iter().map(|n| n.id).collect()
    }

    #[test]
    fn bond_sequential_equals_brute_force() {
        let (n, d, k) = (500, 24, 10);
        let rows = make_rows(n, d, 3);
        let coll = PdxCollection::from_rows_partitioned(&rows, n, d, 100, 64);
        let blocks: Vec<&SearchBlock> = coll.blocks.iter().collect();
        let bond = PdxBond::new(Metric::L2, VisitOrder::Sequential);
        let q = &rows[7 * d..8 * d].to_vec(); // a query near vector 7
        let got = pdxearch(&bond, &blocks, q, &SearchParams::new(k));
        let want = brute_force(&rows, d, q, k, Metric::L2);
        assert_eq!(ids(&got), ids(&want));
    }

    #[test]
    fn bond_all_visit_orders_are_exact() {
        let (n, d, k) = (400, 32, 5);
        let rows = make_rows(n, d, 11);
        let coll = PdxCollection::from_rows_partitioned(&rows, n, d, 64, 16);
        let blocks: Vec<&SearchBlock> = coll.blocks.iter().collect();
        let q = make_rows(1, d, 99);
        let want = brute_force(&rows, d, &q, k, Metric::L2);
        for order in [
            VisitOrder::Sequential,
            VisitOrder::Decreasing,
            VisitOrder::DistanceToMeans,
            VisitOrder::DimensionZones { zone_size: 8 },
        ] {
            let bond = PdxBond::new(Metric::L2, order);
            let got = pdxearch(&bond, &blocks, &q, &SearchParams::new(k));
            assert_eq!(ids(&got), ids(&want), "order {order:?}");
        }
    }

    #[test]
    fn bond_l1_is_exact() {
        let (n, d, k) = (300, 16, 7);
        let rows = make_rows(n, d, 21);
        let coll = PdxCollection::from_rows_partitioned(&rows, n, d, 50, 64);
        let blocks: Vec<&SearchBlock> = coll.blocks.iter().collect();
        let q = make_rows(1, d, 5);
        let bond = PdxBond::new(Metric::L1, VisitOrder::DistanceToMeans);
        let got = pdxearch(&bond, &blocks, &q, &SearchParams::new(k));
        let want = brute_force(&rows, d, &q, k, Metric::L1);
        assert_eq!(ids(&got), ids(&want));
    }

    #[test]
    fn fixed_step_policy_is_exact_too() {
        let (n, d, k) = (256, 40, 3);
        let rows = make_rows(n, d, 8);
        let coll = PdxCollection::from_rows_partitioned(&rows, n, d, 64, 64);
        let blocks: Vec<&SearchBlock> = coll.blocks.iter().collect();
        let q = make_rows(1, d, 77);
        let bond = PdxBond::new(Metric::L2, VisitOrder::Sequential);
        let params = SearchParams::new(k).with_step(StepPolicy::Fixed { step: 10 });
        let got = pdxearch(&bond, &blocks, &q, &params);
        let want = brute_force(&rows, d, &q, k, Metric::L2);
        assert_eq!(ids(&got), ids(&want));
    }

    #[test]
    fn extreme_selection_fractions_are_exact() {
        let (n, d, k) = (300, 20, 9);
        let rows = make_rows(n, d, 15);
        let coll = PdxCollection::from_rows_partitioned(&rows, n, d, 75, 32);
        let blocks: Vec<&SearchBlock> = coll.blocks.iter().collect();
        let q = make_rows(1, d, 1);
        let want = brute_force(&rows, d, &q, k, Metric::L2);
        for frac in [0.0f32, 0.01, 0.5, 1.0] {
            let bond = PdxBond::new(Metric::L2, VisitOrder::Sequential);
            let params = SearchParams::new(k).with_selection_fraction(frac);
            let got = pdxearch(&bond, &blocks, &q, &params);
            assert_eq!(ids(&got), ids(&want), "selection fraction {frac}");
        }
    }

    #[test]
    fn k_larger_than_collection_returns_everything() {
        let (n, d) = (12, 6);
        let rows = make_rows(n, d, 2);
        let coll = PdxCollection::from_rows_partitioned(&rows, n, d, 5, 4);
        let blocks: Vec<&SearchBlock> = coll.blocks.iter().collect();
        let q = make_rows(1, d, 3);
        let bond = PdxBond::new(Metric::L2, VisitOrder::Sequential);
        let got = pdxearch(&bond, &blocks, &q, &SearchParams::new(50));
        assert_eq!(got.len(), n);
    }

    #[test]
    fn single_block_collection_works() {
        let (n, d, k) = (80, 10, 4);
        let rows = make_rows(n, d, 31);
        let coll = PdxCollection::from_rows_partitioned(&rows, n, d, 1000, 64);
        let blocks: Vec<&SearchBlock> = coll.blocks.iter().collect();
        let q = make_rows(1, d, 4);
        let bond = PdxBond::new(Metric::L2, VisitOrder::Sequential);
        let got = pdxearch(&bond, &blocks, &q, &SearchParams::new(k));
        let want = brute_force(&rows, d, &q, k, Metric::L2);
        assert_eq!(ids(&got), ids(&want));
    }

    #[test]
    fn single_vector_blocks_are_searchable() {
        // Degenerate partitioning: every block holds exactly one vector
        // (and group size 1), so warm-up, pruning and the final merge all
        // run on 1-lane blocks.
        let (n, d, k) = (40, 12, 6);
        let rows = make_rows(n, d, 57);
        let coll = PdxCollection::from_rows_partitioned(&rows, n, d, 1, 1);
        assert_eq!(coll.blocks.len(), n);
        assert!(coll.blocks.iter().all(|b| b.len() == 1));
        let blocks: Vec<&SearchBlock> = coll.blocks.iter().collect();
        let q = make_rows(1, d, 6);
        let bond = PdxBond::new(Metric::L2, VisitOrder::Sequential);
        let got = pdxearch(&bond, &blocks, &q, &SearchParams::new(k));
        let want = brute_force(&rows, d, &q, k, Metric::L2);
        assert_eq!(ids(&got), ids(&want));
    }

    #[test]
    fn duplicated_vectors_tie_cleanly() {
        // Clone one vector many times: the top-k is dominated by exact
        // duplicate distances, and the result must still be the k best by
        // (distance, id) with no duplicates dropped or double-counted.
        let (d, k) = (8, 5);
        let base = make_rows(4, d, 13);
        let mut rows = Vec::new();
        for _ in 0..6 {
            rows.extend_from_slice(&base);
        }
        let n = rows.len() / d;
        let coll = PdxCollection::from_rows_partitioned(&rows, n, d, 7, 4);
        let blocks: Vec<&SearchBlock> = coll.blocks.iter().collect();
        let q = base[..d].to_vec(); // exact match for 6 of the vectors
        let bond = PdxBond::new(Metric::L2, VisitOrder::Sequential);
        let got = pdxearch(&bond, &blocks, &q, &SearchParams::new(k));
        assert_eq!(got.len(), k);
        let want = brute_force(&rows, d, &q, k, Metric::L2);
        let dist = |r: &[Neighbor]| r.iter().map(|x| x.distance).collect::<Vec<_>>();
        assert_eq!(dist(&got), dist(&want));
        assert_eq!(got[0].distance, 0.0);
        let mut seen = ids(&got);
        seen.dedup();
        assert_eq!(seen.len(), k, "duplicate ids in result");
    }

    #[test]
    fn profiled_run_matches_unprofiled_and_records_time() {
        let (n, d, k) = (400, 28, 6);
        let rows = make_rows(n, d, 44);
        let coll = PdxCollection::from_rows_partitioned(&rows, n, d, 64, 64);
        let blocks: Vec<&SearchBlock> = coll.blocks.iter().collect();
        let q = make_rows(1, d, 12);
        let bond = PdxBond::new(Metric::L2, VisitOrder::DistanceToMeans);
        let params = SearchParams::new(k);
        let plain = pdxearch(&bond, &blocks, &q, &params);
        let mut profile = SearchProfile::default();
        let profiled = pdxearch_profiled(&bond, &blocks, &q, &params, &mut profile);
        assert_eq!(ids(&plain), ids(&profiled));
        assert!(profile.distance_ns > 0, "distance phase must be timed");
        // Work counters: every visited block contributes, and the scan
        // never reads more than a full scan would.
        assert_eq!(profile.blocks, blocks.len() as u64);
        assert_eq!(profile.vectors, n as u64);
        assert_eq!(profile.dims_total, (n * d) as u64);
        assert!(profile.dims_scanned > 0);
        assert!(profile.dims_scanned <= profile.dims_total);
    }
}
