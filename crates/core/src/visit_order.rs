//! Query-aware dimension visit orders (§5, Figure 5).
//!
//! A pruner that relies on partial distances wants to visit the
//! dimensions that grow the distance fastest *for this query*. The paper
//! compares three criteria plus storage order:
//!
//! * **Decreasing** — BOND's original criterion: highest query value
//!   first. Only effective when query values are outliers w.r.t. the
//!   collection.
//! * **Distance to means** — dimensions whose block mean is farthest
//!   from the query value first; the highest pruning power.
//! * **Dimension zones** — ranks *zones* of consecutive dimensions by
//!   their aggregate distance-to-means, preserving sequential stretches
//!   inside each zone (the memory-friendly compromise used on small IVF
//!   blocks).

/// How PDX-BOND orders dimension visits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VisitOrder {
    /// Storage order (maximally sequential, no query awareness).
    Sequential,
    /// BOND's criterion: highest query value first.
    Decreasing,
    /// Largest `|query − block mean|` first.
    DistanceToMeans,
    /// Zones of `zone_size` consecutive dims ranked by aggregate
    /// `|query − mean|`; dims inside a zone stay in storage order.
    DimensionZones {
        /// Consecutive dimensions per zone.
        zone_size: usize,
    },
}

/// Default zone width: long enough for hardware prefetching to engage,
/// short enough to retain most of the distance-to-means pruning power.
pub const DEFAULT_ZONE_SIZE: usize = 16;

/// Computes the visit permutation for a query, or `None` for storage
/// order. `means` is required by the mean-based criteria; when absent
/// those fall back to `Decreasing` semantics on the query alone.
pub fn dimension_permutation(
    order: VisitOrder,
    query: &[f32],
    means: Option<&[f32]>,
) -> Option<Vec<u32>> {
    let d = query.len();
    match order {
        VisitOrder::Sequential => None,
        VisitOrder::Decreasing => {
            let mut perm: Vec<u32> = (0..d as u32).collect();
            perm.sort_by(|&a, &b| {
                query[b as usize]
                    .partial_cmp(&query[a as usize])
                    .expect("NaN in query")
                    .then(a.cmp(&b))
            });
            Some(perm)
        }
        VisitOrder::DistanceToMeans => {
            let score = |i: usize| -> f32 {
                match means {
                    Some(m) => (query[i] - m[i]).abs(),
                    None => query[i],
                }
            };
            let mut perm: Vec<u32> = (0..d as u32).collect();
            perm.sort_by(|&a, &b| {
                score(b as usize)
                    .partial_cmp(&score(a as usize))
                    .expect("NaN score")
                    .then(a.cmp(&b))
            });
            Some(perm)
        }
        VisitOrder::DimensionZones { zone_size } => {
            let zone_size = zone_size.max(1);
            let n_zones = d.div_ceil(zone_size);
            if n_zones <= 1 {
                return None;
            }
            let score = |i: usize| -> f32 {
                match means {
                    Some(m) => (query[i] - m[i]).abs(),
                    None => query[i],
                }
            };
            let mut zones: Vec<(u32, f32)> = (0..n_zones as u32)
                .map(|z| {
                    let lo = z as usize * zone_size;
                    let hi = (lo + zone_size).min(d);
                    let total: f32 = (lo..hi).map(score).sum();
                    (z, total / (hi - lo) as f32)
                })
                .collect();
            zones.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("NaN zone score")
                    .then(a.0.cmp(&b.0))
            });
            let mut perm = Vec::with_capacity(d);
            for (z, _) in zones {
                let lo = z as usize * zone_size;
                let hi = (lo + zone_size).min(d);
                perm.extend((lo as u32)..(hi as u32));
            }
            Some(perm)
        }
    }
}

/// Checks that a permutation covers every dimension exactly once
/// (debug/test helper).
pub fn is_valid_permutation(perm: &[u32], dims: usize) -> bool {
    if perm.len() != dims {
        return false;
    }
    let mut seen = vec![false; dims];
    for &p in perm {
        let p = p as usize;
        if p >= dims || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_none() {
        assert!(dimension_permutation(VisitOrder::Sequential, &[1.0, 2.0], None).is_none());
    }

    #[test]
    fn decreasing_sorts_by_query_value() {
        let perm =
            dimension_permutation(VisitOrder::Decreasing, &[0.5, 3.0, -1.0, 2.0], None).unwrap();
        assert_eq!(perm, vec![1, 3, 0, 2]);
    }

    #[test]
    fn distance_to_means_uses_means() {
        let q = [1.0, 1.0, 1.0];
        let means = [1.0, 5.0, -2.0];
        // |q-m| = [0, 4, 3] → order 1, 2, 0.
        let perm = dimension_permutation(VisitOrder::DistanceToMeans, &q, Some(&means)).unwrap();
        assert_eq!(perm, vec![1, 2, 0]);
    }

    #[test]
    fn zones_keep_internal_storage_order() {
        let q = [0.0, 0.0, 9.0, 9.0, 1.0, 1.0];
        let means = [0.0; 6];
        let perm = dimension_permutation(
            VisitOrder::DimensionZones { zone_size: 2 },
            &q,
            Some(&means),
        )
        .unwrap();
        // Zone scores: z0=0, z1=9, z2=1 → visit z1, z2, z0; dims inside zones ascend.
        assert_eq!(perm, vec![2, 3, 4, 5, 0, 1]);
    }

    #[test]
    fn zone_of_whole_vector_is_sequential() {
        let q = [1.0, 2.0, 3.0];
        assert!(
            dimension_permutation(VisitOrder::DimensionZones { zone_size: 10 }, &q, None).is_none()
        );
    }

    #[test]
    fn partial_final_zone_is_handled() {
        let q = [0.0, 0.0, 0.0, 7.0, 7.0];
        let means = [0.0; 5];
        let perm = dimension_permutation(
            VisitOrder::DimensionZones { zone_size: 3 },
            &q,
            Some(&means),
        )
        .unwrap();
        assert!(is_valid_permutation(&perm, 5));
        // Tail zone {3,4} has average 7 > zone {0,1,2} average 0.
        assert_eq!(&perm[..2], &[3, 4]);
    }

    #[test]
    fn all_orders_produce_valid_permutations() {
        let q: Vec<f32> = (0..33).map(|i| ((i * 7) % 13) as f32 - 6.0).collect();
        let means: Vec<f32> = (0..33).map(|i| (i % 5) as f32).collect();
        for order in [
            VisitOrder::Decreasing,
            VisitOrder::DistanceToMeans,
            VisitOrder::DimensionZones { zone_size: 4 },
            VisitOrder::DimensionZones { zone_size: 1 },
        ] {
            let perm = dimension_permutation(order, &q, Some(&means)).unwrap();
            assert!(is_valid_permutation(&perm, 33), "{order:?}");
        }
    }
}
