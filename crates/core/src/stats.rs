//! Per-block metadata (§3 "Metadata per block").
//!
//! Blocks carry per-dimension means (PDX-BOND's distance-to-means visit
//! order) and variances (useful for BSA-style tuning and for dataset
//! diagnostics) — the vector-search analogue of the min/max zone maps
//! analytical systems keep per row-group.

use crate::layout::PdxBlock;

/// Per-dimension statistics of one block of vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockStats {
    /// Mean of each dimension over the block's vectors.
    pub means: Vec<f32>,
    /// Population variance of each dimension.
    pub variances: Vec<f32>,
}

impl BlockStats {
    /// Computes statistics directly from the dimension-major layout
    /// (each group row is one dimension — a sequential pass).
    pub fn from_block(block: &PdxBlock) -> Self {
        let d = block.dims();
        let n = block.len();
        if n == 0 {
            return Self {
                means: vec![0.0; d],
                variances: vec![0.0; d],
            };
        }
        let mut sums = vec![0.0f64; d];
        let mut squares = vec![0.0f64; d];
        for g in block.groups() {
            for dim in 0..d {
                let row = &g.data[dim * g.lanes..(dim + 1) * g.lanes];
                let mut s = 0.0f64;
                let mut sq = 0.0f64;
                for &v in row {
                    s += v as f64;
                    sq += (v as f64) * (v as f64);
                }
                sums[dim] += s;
                squares[dim] += sq;
            }
        }
        let inv = 1.0 / n as f64;
        let means: Vec<f32> = sums.iter().map(|s| (s * inv) as f32).collect();
        let variances: Vec<f32> = squares
            .iter()
            .zip(&sums)
            .map(|(sq, s)| {
                let m = s * inv;
                ((sq * inv) - m * m).max(0.0) as f32
            })
            .collect();
        Self { means, variances }
    }

    /// Computes statistics from row-major data (collection-level stats
    /// for flat exact search, where one ordering serves all blocks).
    pub fn from_rows(rows: &[f32], n_vectors: usize, n_dims: usize) -> Self {
        assert_eq!(
            rows.len(),
            n_vectors * n_dims,
            "row buffer does not match dimensions"
        );
        if n_vectors == 0 {
            return Self {
                means: vec![0.0; n_dims],
                variances: vec![0.0; n_dims],
            };
        }
        let mut sums = vec![0.0f64; n_dims];
        let mut squares = vec![0.0f64; n_dims];
        for row in rows.chunks_exact(n_dims) {
            for (d, &v) in row.iter().enumerate() {
                sums[d] += v as f64;
                squares[d] += (v as f64) * (v as f64);
            }
        }
        let inv = 1.0 / n_vectors as f64;
        let means: Vec<f32> = sums.iter().map(|s| (s * inv) as f32).collect();
        let variances: Vec<f32> = squares
            .iter()
            .zip(&sums)
            .map(|(sq, s)| {
                let m = s * inv;
                ((sq * inv) - m * m).max(0.0) as f32
            })
            .collect();
        Self { means, variances }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_and_variances_match_manual() {
        // Two vectors: (1, 10), (3, 10). Means (2, 10); variances (1, 0).
        let rows = [1.0, 10.0, 3.0, 10.0];
        let block = PdxBlock::from_rows(&rows, 2, 2, 64);
        let stats = BlockStats::from_block(&block);
        assert_eq!(stats.means, vec![2.0, 10.0]);
        assert_eq!(stats.variances, vec![1.0, 0.0]);
    }

    #[test]
    fn block_and_row_paths_agree() {
        let n = 97;
        let d = 7;
        let rows: Vec<f32> = (0..n * d).map(|i| ((i * 31 % 17) as f32) - 8.0).collect();
        let block = PdxBlock::from_rows(&rows, n, d, 16);
        let a = BlockStats::from_block(&block);
        let b = BlockStats::from_rows(&rows, n, d);
        for (x, y) in a.means.iter().zip(&b.means) {
            assert!((x - y).abs() < 1e-5);
        }
        for (x, y) in a.variances.iter().zip(&b.variances) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn empty_block_yields_zeros() {
        let block = PdxBlock::from_rows(&[], 0, 3, 64);
        let stats = BlockStats::from_block(&block);
        assert_eq!(stats.means, vec![0.0; 3]);
        assert_eq!(stats.variances, vec![0.0; 3]);
    }
}
