//! Vector storage layouts.
//!
//! The paper compares four physical layouts (its Figures 1 and 3):
//!
//! * [`PdxBlock`] — the proposed **PDX** layout: vectors are tiled into
//!   groups of `G` (default 64) and each group stores its values
//!   dimension-major, so a distance kernel sweeps one dimension across
//!   `G` vectors in a tight, dependence-free loop.
//! * [`NaryMatrix`] — the conventional horizontal (vector-by-vector)
//!   layout used by FAISS/USearch/Milvus and the `.fvecs` format.
//! * [`DsmMatrix`] — full vertical decomposition (one array per
//!   dimension over the *whole* collection), the BOND/DSM layout.
//! * [`DualBlockMatrix`] — ADSampling's two-segment horizontal layout
//!   (first Δd dimensions of all vectors stored together, remainder in a
//!   second segment).
//! * [`QuantizedPdxBlock`] — the SQ8-quantized twin of [`PdxBlock`]: the
//!   same dimension-major groups, one byte per value, with the
//!   per-dimension codec in [`Sq8Quantizer`].

mod dsm;
mod dual;
mod nary;
mod pdx;
mod quantized;

pub use dsm::DsmMatrix;
pub use dual::DualBlockMatrix;
pub use nary::NaryMatrix;
pub use pdx::{PdxBlock, PdxGroup};
pub use quantized::{QuantizedPdxBlock, QuantizedPdxGroup, Sq8Quantizer, Sq8Query};
