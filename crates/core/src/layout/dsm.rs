//! The fully decomposed (DSM) layout: one contiguous array per dimension
//! across the *entire* collection — the BOND (de Vries et al., 2002)
//! storage model. The paper's §7 shows it maximizes sequential access but
//! forces the distance accumulator array (one slot per collection vector)
//! through loads/stores on every dimension, which is why group-tiled PDX
//! beats it in memory.

/// Column-major collection: `data[dim * n_vectors + vector]`.
#[derive(Debug, Clone, PartialEq)]
pub struct DsmMatrix {
    n_vectors: usize,
    n_dims: usize,
    data: Vec<f32>,
}

impl DsmMatrix {
    /// Builds from row-major data.
    ///
    /// # Panics
    /// Panics if the buffer size disagrees with the dimensions.
    pub fn from_rows(rows: &[f32], n_vectors: usize, n_dims: usize) -> Self {
        assert_eq!(
            rows.len(),
            n_vectors * n_dims,
            "row buffer does not match dimensions"
        );
        let mut data = vec![0.0f32; rows.len()];
        for v in 0..n_vectors {
            for d in 0..n_dims {
                data[d * n_vectors + v] = rows[v * n_dims + d];
            }
        }
        Self {
            n_vectors,
            n_dims,
            data,
        }
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.n_vectors
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.n_vectors == 0
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.n_dims
    }

    /// All values of dimension `d`, one per vector.
    pub fn column(&self, d: usize) -> &[f32] {
        &self.data[d * self.n_vectors..(d + 1) * self.n_vectors]
    }

    /// Value of dimension `d` of vector `v`.
    pub fn value(&self, v: usize, d: usize) -> f32 {
        self.data[d * self.n_vectors + v]
    }

    /// Converts back to row-major form.
    pub fn to_rows(&self) -> Vec<f32> {
        let mut rows = vec![0.0f32; self.data.len()];
        for d in 0..self.n_dims {
            for v in 0..self.n_vectors {
                rows[v * self.n_dims + d] = self.data[d * self.n_vectors + v];
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let rows: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let m = DsmMatrix::from_rows(&rows, 3, 4);
        assert_eq!(m.to_rows(), rows);
    }

    #[test]
    fn columns_are_contiguous_dimensions() {
        let rows = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let m = DsmMatrix::from_rows(&rows, 2, 3);
        assert_eq!(m.column(0), &[1.0, 4.0]);
        assert_eq!(m.column(1), &[2.0, 5.0]);
        assert_eq!(m.column(2), &[3.0, 6.0]);
        assert_eq!(m.value(1, 2), 6.0);
    }
}
