//! ADSampling's dual-block horizontal layout.
//!
//! ADSampling (Gao & Long, 2023) splits every vector at dimension `Δd`:
//! the first `Δd` dimensions of *all* vectors are stored together (they
//! are always scanned, so they cache well), and the remaining dimensions
//! live in a second segment that is touched only for vectors that survive
//! the first hypothesis test. The paper's SIMD-ADS / SCALAR-ADS baselines
//! run on this layout (§6.1 "we adopt the dual-block layout").

use super::NaryMatrix;

/// Two-segment horizontal layout split at `split` dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct DualBlockMatrix {
    split: usize,
    n_dims: usize,
    /// `n × split`: the always-scanned head segment.
    head: NaryMatrix,
    /// `n × (n_dims − split)`: the rest, touched only for survivors.
    tail: NaryMatrix,
}

impl DualBlockMatrix {
    /// Builds from row-major data, splitting each vector at `split`.
    ///
    /// # Panics
    /// Panics if `split == 0` or `split > n_dims`, or on a size mismatch.
    pub fn from_rows(rows: &[f32], n_vectors: usize, n_dims: usize, split: usize) -> Self {
        assert!(split > 0 && split <= n_dims, "split must be in 1..=n_dims");
        assert_eq!(
            rows.len(),
            n_vectors * n_dims,
            "row buffer does not match dimensions"
        );
        let tail_dims = n_dims - split;
        let mut head = Vec::with_capacity(n_vectors * split);
        let mut tail = Vec::with_capacity(n_vectors * tail_dims);
        for v in 0..n_vectors {
            let row = &rows[v * n_dims..(v + 1) * n_dims];
            head.extend_from_slice(&row[..split]);
            tail.extend_from_slice(&row[split..]);
        }
        Self {
            split,
            n_dims,
            head: NaryMatrix::from_vec(n_vectors, split, head),
            tail: NaryMatrix::from_vec(n_vectors, tail_dims, tail),
        }
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.head.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.head.is_empty()
    }

    /// Full dimensionality.
    pub fn dims(&self) -> usize {
        self.n_dims
    }

    /// The split point (head segment width).
    pub fn split(&self) -> usize {
        self.split
    }

    /// First `split` dimensions of vector `v`.
    pub fn head_row(&self, v: usize) -> &[f32] {
        self.head.row(v)
    }

    /// Remaining dimensions of vector `v` (empty when `split == dims`).
    pub fn tail_row(&self, v: usize) -> &[f32] {
        self.tail.row(v)
    }

    /// Reassembles vector `v` in row form (test/debug path).
    pub fn vector(&self, v: usize) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.n_dims);
        out.extend_from_slice(self.head_row(v));
        out.extend_from_slice(self.tail_row(v));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_reassemble() {
        let rows: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let m = DualBlockMatrix::from_rows(&rows, 3, 4, 1);
        assert_eq!(m.head_row(1), &[4.0]);
        assert_eq!(m.tail_row(1), &[5.0, 6.0, 7.0]);
        for v in 0..3 {
            assert_eq!(m.vector(v), rows[v * 4..(v + 1) * 4].to_vec());
        }
    }

    #[test]
    fn full_split_has_empty_tail() {
        let rows = [1.0, 2.0, 3.0, 4.0];
        let m = DualBlockMatrix::from_rows(&rows, 2, 2, 2);
        assert!(m.tail_row(0).is_empty());
        assert_eq!(m.vector(1), vec![3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "split must be")]
    fn zero_split_panics() {
        let _ = DualBlockMatrix::from_rows(&[1.0, 2.0], 1, 2, 0);
    }
}
