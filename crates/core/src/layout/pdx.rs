//! The PDX (Partition Dimensions Across) block layout.
//!
//! A [`PdxBlock`] holds `n` vectors of `d` dimensions, tiled into *vector
//! groups* of at most `group_size` vectors. Within a group the values are
//! stored dimension-major:
//!
//! ```text
//! group g (L lanes) occupies one contiguous span:
//!   [ dim 0: v₀ v₁ … v_{L−1} | dim 1: v₀ v₁ … v_{L−1} | … | dim d−1: … ]
//! ```
//!
//! so the distance kernel's inner loop walks `L` values of *one*
//! dimension across *many* vectors — the multiple-vectors-at-a-time shape
//! that auto-vectorizes with independent accumulator lanes (Algorithm 1
//! in the paper). The final group may have fewer than `group_size`
//! vectors; it keeps its true lane count as the stride (no padding:
//! padding would corrupt inner-product results and inflate the buffer).

/// A block of vectors stored in the PDX layout.
#[derive(Debug, Clone, PartialEq)]
pub struct PdxBlock {
    n_vectors: usize,
    n_dims: usize,
    group_size: usize,
    data: Vec<f32>,
}

/// Borrowed view of one vector group inside a [`PdxBlock`].
#[derive(Debug, Clone, Copy)]
pub struct PdxGroup<'a> {
    /// Dimension-major data: `data[dim * lanes + lane]`.
    pub data: &'a [f32],
    /// Number of vectors (lanes) in this group (= stride between dims).
    pub lanes: usize,
    /// Block-level index of this group's first vector.
    pub start_vector: usize,
}

impl PdxBlock {
    /// Builds a block from row-major vector data (`n_vectors × n_dims`).
    ///
    /// # Panics
    /// Panics if the buffer size disagrees with the dimensions or if
    /// `group_size == 0`.
    pub fn from_rows(rows: &[f32], n_vectors: usize, n_dims: usize, group_size: usize) -> Self {
        assert!(group_size > 0, "group size must be positive");
        assert_eq!(
            rows.len(),
            n_vectors * n_dims,
            "row buffer does not match dimensions"
        );
        let mut data = vec![0.0f32; n_vectors * n_dims];
        let mut out = 0usize;
        let mut v0 = 0usize;
        while v0 < n_vectors {
            let lanes = group_size.min(n_vectors - v0);
            for d in 0..n_dims {
                for l in 0..lanes {
                    data[out] = rows[(v0 + l) * n_dims + d];
                    out += 1;
                }
            }
            v0 += lanes;
        }
        debug_assert_eq!(out, data.len());
        Self {
            n_vectors,
            n_dims,
            group_size,
            data,
        }
    }

    /// Rebuilds a block from an already group-tiled buffer (the
    /// persistence read path — [`PdxBlock::as_slice`] is the matching
    /// write side). The values are stored verbatim, so a block that
    /// round-trips through a container scans bit-identically to the
    /// original.
    ///
    /// # Panics
    /// Panics if the buffer size disagrees or `group_size == 0`.
    pub fn from_tiled(tiled: Vec<f32>, n_vectors: usize, n_dims: usize, group_size: usize) -> Self {
        assert!(group_size > 0, "group size must be positive");
        assert_eq!(
            tiled.len(),
            n_vectors * n_dims,
            "tiled buffer does not match dimensions"
        );
        Self {
            n_vectors,
            n_dims,
            group_size,
            data: tiled,
        }
    }

    /// Builds a block by gathering the given `rows` indices out of a
    /// row-major collection — the IVF bucket construction path.
    ///
    /// # Panics
    /// Panics if any index is out of range or `group_size == 0`.
    pub fn from_row_ids(all_rows: &[f32], n_dims: usize, ids: &[u32], group_size: usize) -> Self {
        assert!(group_size > 0, "group size must be positive");
        let n_vectors = ids.len();
        let mut data = vec![0.0f32; n_vectors * n_dims];
        let mut out = 0usize;
        let mut v0 = 0usize;
        while v0 < n_vectors {
            let lanes = group_size.min(n_vectors - v0);
            for d in 0..n_dims {
                for l in 0..lanes {
                    let row = ids[v0 + l] as usize;
                    data[out] = all_rows[row * n_dims + d];
                    out += 1;
                }
            }
            v0 += lanes;
        }
        Self {
            n_vectors,
            n_dims,
            group_size,
            data,
        }
    }

    /// Number of vectors in the block.
    pub fn len(&self) -> usize {
        self.n_vectors
    }

    /// Whether the block holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.n_vectors == 0
    }

    /// Dimensionality of the stored vectors.
    pub fn dims(&self) -> usize {
        self.n_dims
    }

    /// Configured maximum lanes per group.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Number of vector groups (the last may be partial).
    pub fn group_count(&self) -> usize {
        self.n_vectors.div_ceil(self.group_size)
    }

    /// Borrowed view of group `g`.
    ///
    /// # Panics
    /// Panics if `g >= group_count()`.
    pub fn group(&self, g: usize) -> PdxGroup<'_> {
        let start_vector = g * self.group_size;
        assert!(
            start_vector < self.n_vectors || (self.n_vectors == 0 && g == 0),
            "group out of range"
        );
        let lanes = self.group_size.min(self.n_vectors - start_vector);
        let base = start_vector * self.n_dims;
        PdxGroup {
            data: &self.data[base..base + lanes * self.n_dims],
            lanes,
            start_vector,
        }
    }

    /// Iterator over all groups.
    pub fn groups(&self) -> impl Iterator<Item = PdxGroup<'_>> {
        (0..self.group_count()).map(|g| self.group(g))
    }

    /// Value of dimension `dim` of vector `vec` (random access; slow path
    /// for tests/updates, not for kernels).
    pub fn value(&self, vec: usize, dim: usize) -> f32 {
        let (base, lanes, lane) = self.locate(vec);
        self.data[base + dim * lanes + lane]
    }

    /// Overwrites vector `vec` in place (the paper's §3 "updates are
    /// trivial while data is memory-resident").
    ///
    /// # Panics
    /// Panics if `values.len() != dims()` or `vec` is out of range.
    pub fn set_vector(&mut self, vec: usize, values: &[f32]) {
        assert_eq!(values.len(), self.n_dims, "value count must equal dims");
        let (base, lanes, lane) = self.locate(vec);
        for (d, v) in values.iter().enumerate() {
            self.data[base + d * lanes + lane] = *v;
        }
    }

    /// Appends one vector to the block (§3: append is the typical vector
    /// workload besides bulk load).
    ///
    /// Full groups are untouched; the partial tail group (if any) is
    /// re-strided in place to make room for the new lane, so the cost is
    /// `O(group_size · dims)` worst case, independent of the block size.
    ///
    /// # Panics
    /// Panics if `values.len() != dims()`.
    pub fn push(&mut self, values: &[f32]) {
        assert_eq!(values.len(), self.n_dims, "value count must equal dims");
        let tail_lanes = self.n_vectors % self.group_size;
        if tail_lanes == 0 {
            // Start a fresh group: dimension-major with a single lane.
            self.data.extend_from_slice(values);
        } else {
            // Re-stride the tail group from `tail_lanes` to `tail_lanes+1`.
            let base = (self.n_vectors - tail_lanes) * self.n_dims;
            let old = self.data.split_off(base);
            let new_lanes = tail_lanes + 1;
            self.data.reserve(new_lanes * self.n_dims);
            for d in 0..self.n_dims {
                self.data
                    .extend_from_slice(&old[d * tail_lanes..(d + 1) * tail_lanes]);
                self.data.push(values[d]);
            }
        }
        self.n_vectors += 1;
    }

    /// Copies vector `vec` out into row form.
    pub fn vector(&self, vec: usize) -> Vec<f32> {
        let (base, lanes, lane) = self.locate(vec);
        (0..self.n_dims)
            .map(|d| self.data[base + d * lanes + lane])
            .collect()
    }

    /// Converts the whole block back to row-major form.
    pub fn to_rows(&self) -> Vec<f32> {
        let mut rows = vec![0.0f32; self.n_vectors * self.n_dims];
        for g in self.groups() {
            for l in 0..g.lanes {
                let v = g.start_vector + l;
                for d in 0..self.n_dims {
                    rows[v * self.n_dims + d] = g.data[d * g.lanes + l];
                }
            }
        }
        rows
    }

    /// Raw dimension-major buffer (group-by-group).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// `(group_base_offset, group_lanes, lane_within_group)` of a vector.
    fn locate(&self, vec: usize) -> (usize, usize, usize) {
        assert!(vec < self.n_vectors, "vector index out of range");
        let g = vec / self.group_size;
        let start_vector = g * self.group_size;
        let lanes = self.group_size.min(self.n_vectors - start_vector);
        (start_vector * self.n_dims, lanes, vec - start_vector)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: usize, d: usize) -> Vec<f32> {
        (0..n * d).map(|i| i as f32).collect()
    }

    #[test]
    fn round_trip_exact_groups() {
        let r = rows(8, 3);
        let b = PdxBlock::from_rows(&r, 8, 3, 4);
        assert_eq!(b.group_count(), 2);
        assert_eq!(b.to_rows(), r);
    }

    #[test]
    fn round_trip_partial_tail_group() {
        let r = rows(10, 5);
        let b = PdxBlock::from_rows(&r, 10, 5, 4);
        assert_eq!(b.group_count(), 3);
        assert_eq!(b.group(2).lanes, 2);
        assert_eq!(b.to_rows(), r);
    }

    #[test]
    fn round_trip_single_vector() {
        let r = rows(1, 7);
        let b = PdxBlock::from_rows(&r, 1, 7, 64);
        assert_eq!(b.group_count(), 1);
        assert_eq!(b.to_rows(), r);
    }

    #[test]
    fn layout_is_dimension_major_within_group() {
        // 2 vectors, 2 dims, group 64: layout must be d0(v0 v1) d1(v0 v1).
        let b = PdxBlock::from_rows(&[1.0, 2.0, 3.0, 4.0], 2, 2, 64);
        assert_eq!(b.as_slice(), &[1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn value_accessor_matches_rows() {
        let r = rows(9, 4);
        let b = PdxBlock::from_rows(&r, 9, 4, 4);
        for v in 0..9 {
            for d in 0..4 {
                assert_eq!(b.value(v, d), r[v * 4 + d]);
            }
        }
    }

    #[test]
    fn set_vector_updates_in_place() {
        let r = rows(6, 3);
        let mut b = PdxBlock::from_rows(&r, 6, 3, 4);
        b.set_vector(5, &[9.0, 8.0, 7.0]);
        assert_eq!(b.vector(5), vec![9.0, 8.0, 7.0]);
        // Others untouched.
        assert_eq!(b.vector(0), vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn from_row_ids_gathers() {
        let r = rows(5, 2);
        let b = PdxBlock::from_row_ids(&r, 2, &[4, 0, 2], 2);
        assert_eq!(b.vector(0), vec![8.0, 9.0]);
        assert_eq!(b.vector(1), vec![0.0, 1.0]);
        assert_eq!(b.vector(2), vec![4.0, 5.0]);
    }

    #[test]
    fn groups_iterate_in_order() {
        let r = rows(7, 2);
        let b = PdxBlock::from_rows(&r, 7, 2, 3);
        let starts: Vec<usize> = b.groups().map(|g| g.start_vector).collect();
        assert_eq!(starts, vec![0, 3, 6]);
        let lanes: Vec<usize> = b.groups().map(|g| g.lanes).collect();
        assert_eq!(lanes, vec![3, 3, 1]);
    }

    #[test]
    fn empty_block() {
        let b = PdxBlock::from_rows(&[], 0, 4, 64);
        assert!(b.is_empty());
        assert_eq!(b.group_count(), 0);
        assert_eq!(b.to_rows(), Vec::<f32>::new());
    }

    #[test]
    fn push_onto_empty_block() {
        let mut b = PdxBlock::from_rows(&[], 0, 3, 4);
        b.push(&[1.0, 2.0, 3.0]);
        assert_eq!(b.len(), 1);
        assert_eq!(b.vector(0), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn push_grows_partial_group_then_starts_new_one() {
        let r = rows(4, 2); // group size 4 -> first group exactly full
        let mut b = PdxBlock::from_rows(&r, 4, 2, 4);
        b.push(&[100.0, 101.0]); // starts group 1 with 1 lane
        b.push(&[200.0, 201.0]); // re-strides group 1 to 2 lanes
        assert_eq!(b.len(), 6);
        assert_eq!(b.group_count(), 2);
        assert_eq!(b.group(1).lanes, 2);
        assert_eq!(b.vector(4), vec![100.0, 101.0]);
        assert_eq!(b.vector(5), vec![200.0, 201.0]);
        // Equivalent to building from all rows at once.
        let mut all = r.clone();
        all.extend_from_slice(&[100.0, 101.0, 200.0, 201.0]);
        assert_eq!(b, PdxBlock::from_rows(&all, 6, 2, 4));
    }

    #[test]
    fn many_pushes_equal_bulk_load() {
        let r = rows(23, 5);
        let mut b = PdxBlock::from_rows(&[], 0, 5, 4);
        for row in r.chunks_exact(5) {
            b.push(row);
        }
        assert_eq!(b, PdxBlock::from_rows(&r, 23, 5, 4));
    }

    #[test]
    #[should_panic(expected = "row buffer")]
    fn mismatched_buffer_panics() {
        let _ = PdxBlock::from_rows(&[1.0, 2.0], 2, 2, 64);
    }
}
