//! SQ8 scalar quantization and the quantized PDX block layout.
//!
//! Scalar quantization (SQ8) maps each `f32` value to one byte, shrinking
//! the scan-resident data 4× and letting the distance kernels read four
//! times as many vectors per cache line. The PDX layout is a natural fit:
//! because a kernel visits one *dimension* of many vectors at a time, the
//! per-dimension quantization parameters are loop-invariant scalars that
//! hoist out of the hot lane loop — no per-element parameter lookups, the
//! failure mode that makes quantized kernels on horizontal layouts messy.
//!
//! Two types live here:
//!
//! * [`Sq8Quantizer`] — per-dimension affine codec `value ≈ min_d +
//!   scale_d · code`, learned from the collection at build time. Each
//!   dimension uses its own `[min, max]` range, so dimensions with small
//!   spread (the majority, in power-law-scaled embeddings) keep small
//!   absolute error instead of inheriting the widest dimension's grid.
//! * [`QuantizedPdxBlock`] — the dimension-major `u8` twin of
//!   [`PdxBlock`](crate::layout::PdxBlock): the same vector groups, the
//!   same `data[dim * lanes + lane]` addressing, one byte per value.
//!
//! The decoded value of a code is the *centre* of its quantization cell,
//! so the reconstruction error per value is at most `scale_d / 2` for any
//! value inside the learned range. That bound is what the SQ8 distance
//! error analysis in [`kernels::sq8`](crate::kernels::sq8) builds on.

use crate::distance::Metric;

/// Number of quantization levels of the 8-bit codec.
const LEVELS: f32 = 255.0;

/// Per-dimension affine SQ8 codec: `value ≈ min_d + scale_d · code`.
///
/// Learned once per collection with [`Sq8Quantizer::fit`]; shared by all
/// blocks of that collection so codes are comparable across blocks.
///
/// ```
/// use pdx_core::layout::Sq8Quantizer;
///
/// // Two 2-dimensional vectors spanning [0, 10] × [−1, 1].
/// let rows = [0.0, -1.0, 10.0, 1.0f32];
/// let q = Sq8Quantizer::fit(&rows, 2, 2);
/// let code = q.encode_value(0, 5.0);
/// let back = q.decode_value(0, code);
/// // The reconstruction is within half a quantization step.
/// assert!((back - 5.0).abs() <= q.scale(0) / 2.0 + 1e-4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Sq8Quantizer {
    mins: Vec<f32>,
    scales: Vec<f32>,
}

impl Sq8Quantizer {
    /// Learns per-dimension `[min, max]` ranges from row-major data and
    /// derives `scale_d = (max_d − min_d) / 255`.
    ///
    /// A dimension whose range is empty (constant value) gets scale 1.0:
    /// every value encodes to code 0 and decodes back to the constant.
    ///
    /// # Panics
    /// Panics if the buffer size disagrees with `n_vectors × dims` or if
    /// `dims == 0`.
    pub fn fit(rows: &[f32], n_vectors: usize, dims: usize) -> Self {
        Self::fit_with_pool(rows, n_vectors, dims, &crate::exec::ThreadPool::from_env())
    }

    /// [`Sq8Quantizer::fit`] with an explicit worker pool for the range
    /// pass. Min/max merging is exact, so the learned codec is bitwise
    /// identical at every thread count.
    pub fn fit_with_pool(
        rows: &[f32],
        n_vectors: usize,
        dims: usize,
        pool: &crate::exec::ThreadPool,
    ) -> Self {
        let (mins, maxs) = Self::ranges(rows, n_vectors, dims, pool);
        let scales = mins
            .iter()
            .zip(&maxs)
            .map(|(&lo, &hi)| {
                let range = hi - lo;
                if range > 0.0 {
                    range / LEVELS
                } else {
                    1.0
                }
            })
            .collect();
        Self { mins, scales }
    }

    /// Like [`Sq8Quantizer::fit`] but with one *shared* scale across all
    /// dimensions (each keeps its own min). Under a uniform scale the
    /// pure-integer code-space kernels of
    /// [`kernels::sq8`](crate::kernels::sq8) reconstruct the L2 distance
    /// exactly as `scale² · Σ (q_code − v_code)²` — the trade-off is that
    /// every dimension inherits the widest dimension's grid.
    ///
    /// The shared scale is the widest *actual* range over 255; constant
    /// dimensions do not contribute (an all-constant collection gets
    /// scale 1.0).
    ///
    /// # Panics
    /// Panics as [`Sq8Quantizer::fit`] does.
    pub fn fit_uniform(rows: &[f32], n_vectors: usize, dims: usize) -> Self {
        let (mins, maxs) =
            Self::ranges(rows, n_vectors, dims, &crate::exec::ThreadPool::from_env());
        let widest = mins
            .iter()
            .zip(&maxs)
            .map(|(&lo, &hi)| hi - lo)
            .fold(0.0f32, f32::max);
        let scale = if widest > 0.0 { widest / LEVELS } else { 1.0 };
        Self {
            mins,
            scales: vec![scale; dims],
        }
    }

    /// Per-dimension `[min, max]` over row-major data (the shared first
    /// pass of the fitters), parallelized over row chunks on `pool`.
    fn ranges(
        rows: &[f32],
        n_vectors: usize,
        dims: usize,
        pool: &crate::exec::ThreadPool,
    ) -> (Vec<f32>, Vec<f32>) {
        assert!(dims > 0, "dims must be positive");
        assert_eq!(
            rows.len(),
            n_vectors * dims,
            "row buffer does not match dimensions"
        );
        // Large fixed chunks: the pass is pure streaming min/max, so the
        // only goal is to amortize the per-chunk scheduling cost.
        const CHUNK_VECTORS: usize = 8192;
        let partials = pool.run_chunks(n_vectors, CHUNK_VECTORS, |_ci, range| {
            let mut mins = vec![f32::INFINITY; dims];
            let mut maxs = vec![f32::NEG_INFINITY; dims];
            for row in rows[range.start * dims..range.end * dims].chunks_exact(dims) {
                for (d, &v) in row.iter().enumerate() {
                    mins[d] = mins[d].min(v);
                    maxs[d] = maxs[d].max(v);
                }
            }
            (mins, maxs)
        });
        let mut mins = vec![f32::INFINITY; dims];
        let mut maxs = vec![f32::NEG_INFINITY; dims];
        for (pmin, pmax) in partials {
            for d in 0..dims {
                mins[d] = mins[d].min(pmin[d]);
                maxs[d] = maxs[d].max(pmax[d]);
            }
        }
        if n_vectors == 0 {
            mins.fill(0.0);
            maxs.fill(0.0);
        }
        (mins, maxs)
    }

    /// Dimensionality the codec was learned on.
    pub fn dims(&self) -> usize {
        self.mins.len()
    }

    /// Lower bound of dimension `d`'s learned range.
    pub fn min(&self, d: usize) -> f32 {
        self.mins[d]
    }

    /// Quantization step of dimension `d`.
    pub fn scale(&self, d: usize) -> f32 {
        self.scales[d]
    }

    /// All per-dimension minima.
    pub fn mins(&self) -> &[f32] {
        &self.mins
    }

    /// All per-dimension scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Whether every dimension shares one scale (the
    /// [`Sq8Quantizer::fit_uniform`] shape).
    pub fn is_uniform(&self) -> bool {
        self.scales.windows(2).all(|w| w[0] == w[1])
    }

    /// Rebuilds a codec from stored parameters (the persistence path).
    ///
    /// # Panics
    /// Panics if the slices differ in length, are empty, or any scale is
    /// not strictly positive.
    pub fn from_params(mins: Vec<f32>, scales: Vec<f32>) -> Self {
        assert_eq!(mins.len(), scales.len(), "one scale per min required");
        assert!(!mins.is_empty(), "dims must be positive");
        assert!(
            scales.iter().all(|&s| s > 0.0),
            "scales must be strictly positive"
        );
        Self { mins, scales }
    }

    /// Encodes one value of dimension `d`, clamping to the learned range.
    pub fn encode_value(&self, d: usize, v: f32) -> u8 {
        let code = (v - self.mins[d]) / self.scales[d];
        code.round().clamp(0.0, LEVELS) as u8
    }

    /// Decodes one code of dimension `d` back to the cell centre.
    pub fn decode_value(&self, d: usize, code: u8) -> f32 {
        self.mins[d] + self.scales[d] * code as f32
    }

    /// Encodes row-major vectors into row-major codes.
    ///
    /// # Panics
    /// Panics if the buffer is not whole vectors of [`Sq8Quantizer::dims`].
    pub fn encode_rows(&self, rows: &[f32]) -> Vec<u8> {
        let d = self.dims();
        assert_eq!(rows.len() % d, 0, "rows must be whole vectors");
        let mut out = Vec::with_capacity(rows.len());
        for row in rows.chunks_exact(d) {
            for (dim, &v) in row.iter().enumerate() {
                out.push(self.encode_value(dim, v));
            }
        }
        out
    }

    /// Decodes one row of codes back to `f32` values.
    ///
    /// # Panics
    /// Panics if `codes.len()` differs from [`Sq8Quantizer::dims`].
    pub fn decode_row(&self, codes: &[u8]) -> Vec<f32> {
        assert_eq!(codes.len(), self.dims(), "one code per dimension");
        codes
            .iter()
            .enumerate()
            .map(|(d, &c)| self.decode_value(d, c))
            .collect()
    }

    /// Worst-case reconstruction error of dimension `d` for values inside
    /// the learned range: half a quantization step.
    pub fn max_error(&self, d: usize) -> f32 {
        self.scales[d] / 2.0
    }

    /// Prepares a query for the SQ8 kernels: the query is lifted into
    /// code space once, so the per-dimension affine parameters never
    /// appear in the hot loop. See
    /// [`kernels::sq8`](crate::kernels::sq8) for the per-metric algebra.
    pub fn prepare_query(&self, metric: Metric, query: &[f32]) -> Sq8Query {
        assert_eq!(query.len(), self.dims(), "query dimensionality mismatch");
        let d = self.dims();
        let mut qcode = Vec::with_capacity(d);
        let mut weight = Vec::with_capacity(d);
        let mut bias = 0.0f64;
        for ((&q, &s), &m) in query.iter().zip(&self.scales).zip(&self.mins) {
            match metric {
                // L2: Σ s²·(qc − c)² with qc the query in code space.
                Metric::L2 => {
                    qcode.push((q - m) / s);
                    weight.push(s * s);
                }
                // L1: Σ s·|qc − c|.
                Metric::L1 => {
                    qcode.push((q - m) / s);
                    weight.push(s);
                }
                // −q·v̂ = −Σ q·(m + s·c) = −Σ q·m − Σ (q·s)·c.
                Metric::NegativeIp => {
                    qcode.push(q * s);
                    weight.push(1.0);
                    bias -= (q as f64) * (m as f64);
                }
            }
        }
        Sq8Query {
            metric,
            qcode,
            weight,
            bias: bias as f32,
        }
    }
}

/// A query prepared for SQ8 scanning: per-dimension code-space
/// coordinates and fold weights, plus a per-distance constant.
///
/// Produced by [`Sq8Quantizer::prepare_query`]; consumed by the kernels
/// in [`kernels::sq8`](crate::kernels::sq8). The estimated distance a
/// kernel produces is the **exact** distance between the query and the
/// *dequantized* vector — the only approximation is the quantization of
/// the stored data itself.
#[derive(Debug, Clone)]
pub struct Sq8Query {
    /// Metric the preparation targeted.
    pub metric: Metric,
    /// Per-dimension query coordinate: `(q_d − min_d) / scale_d` for
    /// L2/L1, `q_d · scale_d` for inner product.
    pub qcode: Vec<f32>,
    /// Per-dimension fold weight: `scale_d²` (L2), `scale_d` (L1), unused
    /// (1.0) for inner product.
    pub weight: Vec<f32>,
    /// Constant added once per distance (`−Σ q_d · min_d` for inner
    /// product, 0 otherwise).
    pub bias: f32,
}

impl Sq8Query {
    /// Dimensionality of the prepared query.
    pub fn dims(&self) -> usize {
        self.qcode.len()
    }
}

/// A block of SQ8-quantized vectors in the PDX layout: the `u8` twin of
/// [`PdxBlock`](crate::layout::PdxBlock), with identical group tiling.
///
/// ```
/// use pdx_core::layout::{QuantizedPdxBlock, Sq8Quantizer};
///
/// let rows = [0.0, 4.0, 1.0, 5.0, 2.0, 6.0, 3.0, 7.0f32];
/// let quantizer = Sq8Quantizer::fit(&rows, 4, 2);
/// let block = QuantizedPdxBlock::from_rows(&rows, 4, 2, 64, &quantizer);
/// assert_eq!(block.len(), 4);
/// // One byte per value: 4× smaller than the f32 block.
/// assert_eq!(block.resident_bytes(), 8);
/// // Decoding recovers each value to within half a step.
/// let v = block.decode_vector(2, &quantizer);
/// assert!((v[0] - 2.0).abs() <= quantizer.scale(0) / 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedPdxBlock {
    n_vectors: usize,
    n_dims: usize,
    group_size: usize,
    data: Vec<u8>,
}

/// Borrowed view of one vector group inside a [`QuantizedPdxBlock`].
#[derive(Debug, Clone, Copy)]
pub struct QuantizedPdxGroup<'a> {
    /// Dimension-major codes: `data[dim * lanes + lane]`.
    pub data: &'a [u8],
    /// Number of vectors (lanes) in this group (= stride between dims).
    pub lanes: usize,
    /// Block-level index of this group's first vector.
    pub start_vector: usize,
}

impl QuantizedPdxBlock {
    /// Quantizes row-major `f32` data (`n_vectors × n_dims`) into a
    /// group-tiled `u8` block.
    ///
    /// # Panics
    /// Panics if the buffer size disagrees with the dimensions, the
    /// quantizer was fit on a different dimensionality, or
    /// `group_size == 0`.
    pub fn from_rows(
        rows: &[f32],
        n_vectors: usize,
        n_dims: usize,
        group_size: usize,
        quantizer: &Sq8Quantizer,
    ) -> Self {
        assert_eq!(
            rows.len(),
            n_vectors * n_dims,
            "row buffer does not match dimensions"
        );
        assert_eq!(quantizer.dims(), n_dims, "quantizer dimensionality");
        Self::from_code_rows(&quantizer.encode_rows(rows), n_vectors, n_dims, group_size)
    }

    /// Builds a block by gathering (and quantizing) the given row indices
    /// out of a row-major collection — the IVF bucket construction path.
    ///
    /// # Panics
    /// Panics if any index is out of range or `group_size == 0`.
    pub fn from_row_ids(
        all_rows: &[f32],
        n_dims: usize,
        ids: &[u32],
        group_size: usize,
        quantizer: &Sq8Quantizer,
    ) -> Self {
        assert_eq!(quantizer.dims(), n_dims, "quantizer dimensionality");
        let mut rows = Vec::with_capacity(ids.len() * n_dims);
        for &v in ids {
            rows.extend_from_slice(&all_rows[v as usize * n_dims..(v as usize + 1) * n_dims]);
        }
        Self::from_rows(&rows, ids.len(), n_dims, group_size, quantizer)
    }

    /// Tiles row-major codes (`n_vectors × n_dims`) into PDX groups.
    ///
    /// # Panics
    /// Panics if the buffer size disagrees or `group_size == 0`.
    pub fn from_code_rows(
        codes: &[u8],
        n_vectors: usize,
        n_dims: usize,
        group_size: usize,
    ) -> Self {
        assert!(group_size > 0, "group size must be positive");
        assert_eq!(
            codes.len(),
            n_vectors * n_dims,
            "code buffer does not match dimensions"
        );
        let mut data = vec![0u8; n_vectors * n_dims];
        let mut out = 0usize;
        let mut v0 = 0usize;
        while v0 < n_vectors {
            let lanes = group_size.min(n_vectors - v0);
            for d in 0..n_dims {
                for l in 0..lanes {
                    data[out] = codes[(v0 + l) * n_dims + d];
                    out += 1;
                }
            }
            v0 += lanes;
        }
        Self {
            n_vectors,
            n_dims,
            group_size,
            data,
        }
    }

    /// Rebuilds a block from an already group-tiled code buffer (the
    /// persistence read path — [`QuantizedPdxBlock::as_slice`] is the
    /// matching write side). Unlike `f32` blocks there is no numeric
    /// invariant to re-validate: any byte is a valid code, so only the
    /// buffer geometry is checked.
    ///
    /// # Panics
    /// Panics if the buffer size disagrees or `group_size == 0`.
    pub fn from_tiled(tiled: Vec<u8>, n_vectors: usize, n_dims: usize, group_size: usize) -> Self {
        assert!(group_size > 0, "group size must be positive");
        assert_eq!(
            tiled.len(),
            n_vectors * n_dims,
            "code buffer does not match dimensions"
        );
        Self {
            n_vectors,
            n_dims,
            group_size,
            data: tiled,
        }
    }

    /// Number of vectors in the block.
    pub fn len(&self) -> usize {
        self.n_vectors
    }

    /// Whether the block holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.n_vectors == 0
    }

    /// Dimensionality of the stored vectors.
    pub fn dims(&self) -> usize {
        self.n_dims
    }

    /// Configured maximum lanes per group.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Number of vector groups (the last may be partial).
    pub fn group_count(&self) -> usize {
        self.n_vectors.div_ceil(self.group_size)
    }

    /// Bytes of scan-resident code data (exactly `len() · dims()`; the
    /// f32 twin holds 4× as much).
    pub fn resident_bytes(&self) -> usize {
        self.data.len()
    }

    /// Borrowed view of group `g`.
    ///
    /// # Panics
    /// Panics if `g >= group_count()`.
    pub fn group(&self, g: usize) -> QuantizedPdxGroup<'_> {
        let start_vector = g * self.group_size;
        assert!(
            start_vector < self.n_vectors || (self.n_vectors == 0 && g == 0),
            "group out of range"
        );
        let lanes = self.group_size.min(self.n_vectors - start_vector);
        let base = start_vector * self.n_dims;
        QuantizedPdxGroup {
            data: &self.data[base..base + lanes * self.n_dims],
            lanes,
            start_vector,
        }
    }

    /// Iterator over all groups.
    pub fn groups(&self) -> impl Iterator<Item = QuantizedPdxGroup<'_>> {
        (0..self.group_count()).map(|g| self.group(g))
    }

    /// Code of dimension `dim` of vector `vec` (random access; slow path
    /// for tests and rerank-free decoding, not for kernels).
    pub fn code(&self, vec: usize, dim: usize) -> u8 {
        let (base, lanes, lane) = self.locate(vec);
        self.data[base + dim * lanes + lane]
    }

    /// Converts the whole block back to row-major codes.
    pub fn to_code_rows(&self) -> Vec<u8> {
        let mut rows = vec![0u8; self.n_vectors * self.n_dims];
        for g in self.groups() {
            for l in 0..g.lanes {
                let v = g.start_vector + l;
                for d in 0..self.n_dims {
                    rows[v * self.n_dims + d] = g.data[d * g.lanes + l];
                }
            }
        }
        rows
    }

    /// Decodes vector `vec` back into `f32` row form.
    ///
    /// # Panics
    /// Panics if the quantizer dimensionality differs or `vec` is out of
    /// range.
    pub fn decode_vector(&self, vec: usize, quantizer: &Sq8Quantizer) -> Vec<f32> {
        assert_eq!(quantizer.dims(), self.n_dims, "quantizer dimensionality");
        let (base, lanes, lane) = self.locate(vec);
        (0..self.n_dims)
            .map(|d| quantizer.decode_value(d, self.data[base + d * lanes + lane]))
            .collect()
    }

    /// Raw dimension-major code buffer (group-by-group).
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// `(group_base_offset, group_lanes, lane_within_group)` of a vector.
    fn locate(&self, vec: usize) -> (usize, usize, usize) {
        assert!(vec < self.n_vectors, "vector index out of range");
        let g = vec / self.group_size;
        let start_vector = g * self.group_size;
        let lanes = self.group_size.min(self.n_vectors - start_vector);
        (start_vector * self.n_dims, lanes, vec - start_vector)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: usize, d: usize) -> Vec<f32> {
        (0..n * d)
            .map(|i| ((i * 37 % 101) as f32) * 0.25 - 12.0)
            .collect()
    }

    #[test]
    fn fit_learns_per_dimension_ranges() {
        let r = [0.0, -8.0, 10.0, 8.0f32];
        let q = Sq8Quantizer::fit(&r, 2, 2);
        assert_eq!(q.min(0), 0.0);
        assert_eq!(q.min(1), -8.0);
        assert!((q.scale(0) - 10.0 / 255.0).abs() < 1e-7);
        assert!((q.scale(1) - 16.0 / 255.0).abs() < 1e-7);
        assert!(!q.is_uniform());
    }

    #[test]
    fn encode_decode_error_is_within_half_step() {
        let r = rows(50, 7);
        let q = Sq8Quantizer::fit(&r, 50, 7);
        for (i, &v) in r.iter().enumerate() {
            let d = i % 7;
            let back = q.decode_value(d, q.encode_value(d, v));
            assert!(
                (back - v).abs() <= q.max_error(d) * (1.0 + 1e-3),
                "dim {d}: {v} -> {back}"
            );
        }
    }

    #[test]
    fn range_extremes_map_to_code_extremes() {
        let r = [1.0f32, 3.0];
        let q = Sq8Quantizer::fit(&r, 2, 1);
        assert_eq!(q.encode_value(0, 1.0), 0);
        assert_eq!(q.encode_value(0, 3.0), 255);
        // Out-of-range values clamp.
        assert_eq!(q.encode_value(0, -100.0), 0);
        assert_eq!(q.encode_value(0, 100.0), 255);
    }

    #[test]
    fn constant_dimension_round_trips() {
        let r = [5.0f32, 5.0, 5.0];
        let q = Sq8Quantizer::fit(&r, 3, 1);
        assert_eq!(q.encode_value(0, 5.0), 0);
        assert_eq!(q.decode_value(0, 0), 5.0);
    }

    #[test]
    fn uniform_fit_shares_the_widest_scale() {
        let r = [0.0, 0.0, 10.0, 1.0f32]; // ranges 10 and 1
        let q = Sq8Quantizer::fit_uniform(&r, 2, 2);
        assert!(q.is_uniform());
        assert!((q.scale(0) - 10.0 / 255.0).abs() < 1e-7);
        assert!((q.scale(1) - 10.0 / 255.0).abs() < 1e-7);
        // Mins stay per-dimension.
        assert_eq!(q.min(1), 0.0);
    }

    #[test]
    fn uniform_fit_ignores_constant_dimension_sentinels() {
        // Dim 1 is constant; its sentinel scale (1.0 in `fit`) must not
        // become the shared scale and flatten dim 0's narrow range.
        let r = [0.0, 7.0, 0.01, 7.0f32];
        let q = Sq8Quantizer::fit_uniform(&r, 2, 2);
        assert!((q.scale(0) - 0.01 / 255.0).abs() < 1e-9);
        assert_eq!(q.encode_value(0, 0.01), 255);
        // All-constant collections still fall back to scale 1.0.
        let q = Sq8Quantizer::fit_uniform(&[3.0f32, 3.0], 2, 1);
        assert_eq!(q.scale(0), 1.0);
        assert_eq!(q.decode_value(0, q.encode_value(0, 3.0)), 3.0);
    }

    #[test]
    fn from_params_round_trips() {
        let r = rows(20, 3);
        let q = Sq8Quantizer::fit(&r, 20, 3);
        let q2 = Sq8Quantizer::from_params(q.mins().to_vec(), q.scales().to_vec());
        assert_eq!(q, q2);
    }

    #[test]
    fn block_layout_is_dimension_major_within_group() {
        // 2 vectors, 2 dims: codes must tile as d0(v0 v1) d1(v0 v1).
        let codes = [1u8, 2, 3, 4];
        let b = QuantizedPdxBlock::from_code_rows(&codes, 2, 2, 64);
        assert_eq!(b.as_slice(), &[1, 3, 2, 4]);
    }

    #[test]
    fn code_rows_round_trip_with_partial_tail_group() {
        let codes: Vec<u8> = (0..50u8).collect();
        let b = QuantizedPdxBlock::from_code_rows(&codes, 10, 5, 4);
        assert_eq!(b.group_count(), 3);
        assert_eq!(b.group(2).lanes, 2);
        assert_eq!(b.to_code_rows(), codes);
    }

    #[test]
    fn quantized_block_matches_scalar_codec() {
        let r = rows(23, 6);
        let q = Sq8Quantizer::fit(&r, 23, 6);
        let b = QuantizedPdxBlock::from_rows(&r, 23, 6, 8, &q);
        for v in 0..23 {
            for d in 0..6 {
                assert_eq!(b.code(v, d), q.encode_value(d, r[v * 6 + d]));
            }
        }
    }

    #[test]
    fn from_row_ids_gathers_and_quantizes() {
        let r = rows(9, 4);
        let q = Sq8Quantizer::fit(&r, 9, 4);
        let b = QuantizedPdxBlock::from_row_ids(&r, 4, &[8, 0, 3], 2, &q);
        assert_eq!(b.len(), 3);
        for d in 0..4 {
            assert_eq!(b.code(0, d), q.encode_value(d, r[8 * 4 + d]));
            assert_eq!(b.code(1, d), q.encode_value(d, r[d]));
        }
    }

    #[test]
    fn decode_vector_is_close_to_original() {
        let r = rows(40, 5);
        let q = Sq8Quantizer::fit(&r, 40, 5);
        let b = QuantizedPdxBlock::from_rows(&r, 40, 5, 16, &q);
        for v in [0usize, 17, 39] {
            let back = b.decode_vector(v, &q);
            for d in 0..5 {
                assert!((back[d] - r[v * 5 + d]).abs() <= q.max_error(d) * (1.0 + 1e-3));
            }
        }
    }

    #[test]
    fn resident_bytes_are_one_per_value() {
        let r = rows(30, 8);
        let q = Sq8Quantizer::fit(&r, 30, 8);
        let b = QuantizedPdxBlock::from_rows(&r, 30, 8, 64, &q);
        assert_eq!(b.resident_bytes(), 30 * 8);
    }

    #[test]
    fn empty_block() {
        let q = Sq8Quantizer::fit(&[], 0, 3);
        let b = QuantizedPdxBlock::from_rows(&[], 0, 3, 64, &q);
        assert!(b.is_empty());
        assert_eq!(b.group_count(), 0);
    }

    #[test]
    #[should_panic(expected = "code buffer")]
    fn mismatched_buffer_panics() {
        let _ = QuantizedPdxBlock::from_code_rows(&[1, 2], 2, 2, 64);
    }
}
