//! The horizontal (vector-by-vector / N-ary) layout — the de-facto
//! standard the paper compares against (`.fvecs`, FAISS, USearch, …).

/// Row-major collection of vectors: row `i` is vector `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct NaryMatrix {
    n_vectors: usize,
    n_dims: usize,
    data: Vec<f32>,
}

impl NaryMatrix {
    /// Wraps a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != n_vectors * n_dims`.
    pub fn from_vec(n_vectors: usize, n_dims: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            n_vectors * n_dims,
            "buffer does not match dimensions"
        );
        Self {
            n_vectors,
            n_dims,
            data,
        }
    }

    /// Copies a row-major slice.
    pub fn from_rows(rows: &[f32], n_vectors: usize, n_dims: usize) -> Self {
        Self::from_vec(n_vectors, n_dims, rows.to_vec())
    }

    /// Gathers the given row ids out of a larger row-major collection.
    pub fn from_row_ids(all_rows: &[f32], n_dims: usize, ids: &[u32]) -> Self {
        let mut data = Vec::with_capacity(ids.len() * n_dims);
        for &id in ids {
            let row = id as usize;
            data.extend_from_slice(&all_rows[row * n_dims..(row + 1) * n_dims]);
        }
        Self {
            n_vectors: ids.len(),
            n_dims,
            data,
        }
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.n_vectors
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.n_vectors == 0
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.n_dims
    }

    /// Vector `i` as a slice.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.n_dims..(i + 1) * self.n_dims]
    }

    /// Mutable vector `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.n_dims..(i + 1) * self.n_dims]
    }

    /// The full row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Consumes into the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Iterator over rows.
    pub fn rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.n_dims.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_round_trip() {
        let m = NaryMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.rows().count(), 2);
    }

    #[test]
    fn gather_by_ids() {
        let all = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let m = NaryMatrix::from_row_ids(&all, 2, &[2, 0]);
        assert_eq!(m.row(0), &[4.0, 5.0]);
        assert_eq!(m.row(1), &[0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "buffer does not match")]
    fn bad_buffer_panics() {
        let _ = NaryMatrix::from_vec(2, 2, vec![1.0]);
    }
}
