//! Byte-budgeted block cache for out-of-core deployments.
//!
//! A [`BlockCache`] sits between a lazily backed index and its
//! container file: bucket loads go through [`BlockCache::get_or_load`],
//! which answers repeat requests from memory and evicts entries once
//! the byte budget is exceeded.
//!
//! ## Eviction policy
//!
//! Frequency-protected LRU: the victim is the entry with the fewest
//! lifetime hits, ties broken by recency. Pure LRU collapses on the
//! out-of-core workload's natural shape — query batches re-probing a
//! popular bucket set cyclically — because a cycle longer than the
//! budget flushes the entire cache every pass; protecting frequent
//! entries keeps the popular set resident and misses only the tail.
//! Hit counts are halved on an amortized schedule (every ~8 × capacity
//! operations per shard) so a once-hot entry decays and a shifted
//! workload takes over the budget instead of being locked out.
//!
//! ## Pinning invariant
//!
//! Values are handed out as `Arc<V>` clones. Eviction only drops the
//! cache's own reference, so a reader that obtained a bucket before an
//! eviction keeps scanning valid data — eviction can never invalidate
//! an in-flight search, it only affects what the *next* load finds
//! resident.
//!
//! ## Budget invariant
//!
//! The budget splits evenly across the shards and each shard upholds
//! `cached bytes ≤ shard budget` after every operation. An entry larger
//! than a whole shard's budget is returned to the caller but never
//! inserted (caching it would either break the invariant or evict the
//! entire shard for a value that cannot stay), so the cache's resident
//! footprint is bounded by the budget at all times; only values still
//! pinned by in-flight readers can transiently exceed it, and those
//! bytes are the readers', not the cache's.
//!
//! Sharding keeps lock contention low under concurrent readers: a key
//! hashes to one shard, and a miss holds only that shard's lock while
//! it loads (which also collapses concurrent loads of the same key
//! into one read). The shard count adapts to the budget so that tiny
//! budgets — like the `PDX_CACHE_BYTES` eviction-churn CI leg — still
//! get one meaningfully sized LRU domain instead of sixteen degenerate
//! ones.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Environment variable naming the default cache byte budget for
/// lazily opened containers (a number of bytes; `0` or empty disables
/// the override).
pub const CACHE_BYTES_ENV: &str = "PDX_CACHE_BYTES";

/// Resolves a cache byte budget: an explicit `requested` value wins,
/// otherwise the [`CACHE_BYTES_ENV`] environment override applies
/// (empty or unparsable values are ignored), otherwise `None` — the
/// caller's fully resident default.
pub fn resolve_cache_bytes(requested: Option<u64>) -> Option<u64> {
    if requested.is_some() {
        return requested;
    }
    match std::env::var(CACHE_BYTES_ENV) {
        Ok(v) => match v.trim() {
            "" => None,
            v => v.parse::<u64>().ok().filter(|&b| b > 0),
        },
        Err(_) => None,
    }
}

/// Counters describing a cache's traffic and footprint. All counts are
/// cumulative since the cache was created.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Loads answered from memory.
    pub hits: u64,
    /// Loads that had to read the backing store.
    pub misses: u64,
    /// Entries dropped to make room under the byte budget.
    pub evictions: u64,
    /// Bytes currently held by the cache (pinned-but-evicted values
    /// excluded — those belong to their readers).
    pub resident_bytes: u64,
    /// The configured byte budget.
    pub budget_bytes: u64,
}

struct Entry<V> {
    value: Arc<V>,
    bytes: u64,
    last_used: u64,
    /// Lifetime hits (decayed periodically); the eviction shield.
    uses: u32,
}

struct Shard<K, V> {
    map: HashMap<K, Entry<V>>,
    /// Monotone logical clock driving the LRU order.
    tick: u64,
    /// Bytes held by this shard (kept incrementally; the budget check
    /// must not rescan the map on every miss).
    used: u64,
    /// Tick at which the next frequency decay runs.
    decay_at: u64,
}

/// Sharded, byte-budgeted LRU cache over `Arc`-pinned values.
///
/// `K` is the bucket key (an index, an offset); `V` is the decoded
/// bucket. The loader passed to [`BlockCache::get_or_load`] reports the
/// value's byte weight, which is what the budget accounts.
pub struct BlockCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    shard_budget: u64,
    budget: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    resident: AtomicU64,
}

impl<K, V> std::fmt::Debug for BlockCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("shards", &self.shards.len())
            .field("budget_bytes", &self.budget)
            .field("resident_bytes", &self.resident.load(Ordering::Relaxed))
            .finish()
    }
}

/// Preferred minimum budget per shard. Splitting a budget across
/// shards loses capacity to imbalance — each shard evicts against its
/// own slice of the budget, so a popular key set that hashes unevenly
/// thrashes shards that a single domain would have absorbed. Large
/// shards keep that loss small; extra shards are only worth taking for
/// lock-contention relief once the budget is big.
const MIN_SHARD_BUDGET: u64 = 32 << 20;
/// Upper bound on the shard count (lock-contention relief plateaus).
const MAX_SHARDS: usize = 16;
/// Minimum operations between frequency decays of one shard.
const DECAY_PERIOD_FLOOR: u64 = 128;

impl<K: Hash + Eq + Clone, V> BlockCache<K, V> {
    /// Creates a cache with the given total byte budget. A zero budget
    /// is honored literally: every load misses and nothing is cached.
    pub fn new(budget_bytes: u64) -> Self {
        let shards = (budget_bytes / MIN_SHARD_BUDGET).clamp(1, MAX_SHARDS as u64) as usize;
        Self::with_shards(budget_bytes, shards)
    }

    /// [`BlockCache::new`] with an explicit shard count (tests pin it).
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn with_shards(budget_bytes: u64, shards: usize) -> Self {
        assert!(shards > 0, "cache needs at least one shard");
        crate::obs::cache_metrics().budget_bytes.set(budget_bytes);
        Self {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        tick: 0,
                        used: 0,
                        decay_at: DECAY_PERIOD_FLOOR,
                    })
                })
                .collect(),
            shard_budget: budget_bytes / shards as u64,
            budget: budget_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            resident: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    /// Whether `key` is resident right now, without touching the LRU
    /// order or the hit/miss counters. Prefetchers use this to decide
    /// what to load ahead of a scan; the answer is advisory — a
    /// concurrent eviction can falsify it before the caller acts.
    pub fn contains(&self, key: &K) -> bool {
        self.shard_of(key)
            .lock()
            .expect("cache shard lock")
            .map
            .contains_key(key)
    }

    /// Whether a value of `bytes` can be cached at all (it fits one
    /// shard's budget). Oversized values still load fine through
    /// [`BlockCache::get_or_load`] — they are just never retained, so
    /// prefetching them ahead of time is wasted work.
    pub fn admits(&self, bytes: u64) -> bool {
        bytes <= self.shard_budget
    }

    /// Returns the cached value for `key`, or runs `load` (under the
    /// shard lock, so concurrent loads of one key collapse into one
    /// read), caches the result if it fits the shard budget — evicting
    /// the least-frequently-used entries (ties broken by recency) as
    /// needed — and returns it.
    ///
    /// # Errors
    /// Propagates the loader's error; nothing is cached on failure.
    pub fn get_or_load(
        &self,
        key: &K,
        load: impl FnOnce() -> io::Result<(V, u64)>,
    ) -> io::Result<Arc<V>> {
        let mut shard = self.shard_of(key).lock().expect("cache shard lock");
        shard.tick += 1;
        let tick = shard.tick;
        if tick >= shard.decay_at {
            for e in shard.map.values_mut() {
                // Halve with a floor of 1: order among hot entries is
                // preserved, stale ones drift to the eviction frontier.
                e.uses -= e.uses / 2;
            }
            shard.decay_at = tick + (8 * shard.map.len() as u64).max(DECAY_PERIOD_FLOOR);
        }
        if let Some(entry) = shard.map.get_mut(key) {
            entry.last_used = tick;
            entry.uses = entry.uses.saturating_add(1);
            self.hits.fetch_add(1, Ordering::Relaxed);
            crate::obs::cache_metrics().hits.inc();
            return Ok(Arc::clone(&entry.value));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        crate::obs::cache_metrics().misses.inc();
        let (value, bytes) = load()?;
        let value = Arc::new(value);
        if bytes <= self.shard_budget {
            while shard.used + bytes > self.shard_budget {
                let victim = shard
                    .map
                    .iter()
                    .min_by_key(|(_, e)| (e.uses, e.last_used))
                    .map(|(k, _)| k.clone())
                    .expect("over budget implies a resident entry");
                let evicted = shard.map.remove(&victim).expect("victim is resident");
                shard.used -= evicted.bytes;
                self.resident.fetch_sub(evicted.bytes, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                let m = crate::obs::cache_metrics();
                m.evictions.inc();
                m.resident_bytes.sub(evicted.bytes);
            }
            shard.map.insert(
                key.clone(),
                Entry {
                    value: Arc::clone(&value),
                    bytes,
                    last_used: tick,
                    uses: 1,
                },
            );
            shard.used += bytes;
            self.resident.fetch_add(bytes, Ordering::Relaxed);
            crate::obs::cache_metrics().resident_bytes.add(bytes);
        }
        Ok(value)
    }

    /// Current traffic counters and footprint.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: self.resident.load(Ordering::Relaxed),
            budget_bytes: self.budget,
        }
    }

    /// The configured total byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// Bytes currently cached (see [`CacheStats::resident_bytes`]).
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(v: u32, bytes: u64) -> impl FnOnce() -> io::Result<(u32, u64)> {
        move || Ok((v, bytes))
    }

    #[test]
    fn hits_and_misses_count() {
        let cache: BlockCache<u32, u32> = BlockCache::with_shards(1024, 1);
        assert_eq!(*cache.get_or_load(&1, load(10, 100)).unwrap(), 10);
        assert_eq!(*cache.get_or_load(&1, load(99, 100)).unwrap(), 10);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
        assert_eq!(s.resident_bytes, 100);
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        let cache: BlockCache<u32, u32> = BlockCache::with_shards(250, 1);
        cache.get_or_load(&1, load(1, 100)).unwrap();
        cache.get_or_load(&2, load(2, 100)).unwrap();
        // Touch 1 so 2 becomes the LRU victim.
        cache.get_or_load(&1, load(1, 100)).unwrap();
        cache.get_or_load(&3, load(3, 100)).unwrap();
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.resident_bytes <= 250);
        // 2 was evicted; 1 and 3 still hit.
        assert_eq!(cache.stats().hits, 1);
        cache.get_or_load(&1, load(0, 100)).unwrap();
        cache.get_or_load(&3, load(0, 100)).unwrap();
        assert_eq!(cache.stats().hits, 3);
        cache.get_or_load(&2, load(2, 100)).unwrap();
        assert_eq!(cache.stats().hits, 3, "2 must have been evicted");
    }

    #[test]
    fn oversized_entries_bypass_the_cache() {
        let cache: BlockCache<u32, u32> = BlockCache::with_shards(100, 1);
        cache.get_or_load(&1, load(1, 50)).unwrap();
        let v = cache.get_or_load(&2, load(2, 500)).unwrap();
        assert_eq!(*v, 2);
        let s = cache.stats();
        // The oversized value was returned but not cached, and the
        // resident entry was not evicted for it.
        assert_eq!(s.resident_bytes, 50);
        assert_eq!(s.evictions, 0);
        cache.get_or_load(&1, load(1, 50)).unwrap();
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn pinned_values_survive_eviction() {
        let cache: BlockCache<u32, Vec<u8>> = BlockCache::with_shards(100, 1);
        let pinned = cache.get_or_load(&1, || Ok((vec![7u8; 10], 100))).unwrap();
        cache.get_or_load(&2, || Ok((vec![8u8; 10], 100))).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        // The Arc still reads the original bytes after eviction.
        assert!(pinned.iter().all(|&b| b == 7));
    }

    #[test]
    fn loader_errors_cache_nothing() {
        let cache: BlockCache<u32, u32> = BlockCache::with_shards(100, 1);
        let err = cache
            .get_or_load(&1, || Err::<(u32, u64), _>(io::Error::other("boom")))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert_eq!(cache.stats().resident_bytes, 0);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn zero_budget_never_caches() {
        let cache: BlockCache<u32, u32> = BlockCache::new(0);
        cache.get_or_load(&1, load(1, 1)).unwrap();
        cache.get_or_load(&1, load(1, 1)).unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.resident_bytes), (0, 2, 0));
    }

    #[test]
    fn shard_count_adapts_to_budget() {
        assert_eq!(BlockCache::<u32, u32>::new(0).shards.len(), 1);
        assert_eq!(BlockCache::<u32, u32>::new(1 << 10).shards.len(), 1);
        // Mid-size budgets stay a single domain: splitting them loses
        // more capacity to shard imbalance than the lock relief is
        // worth.
        assert_eq!(BlockCache::<u32, u32>::new(24 << 20).shards.len(), 1);
        assert_eq!(BlockCache::<u32, u32>::new(256 << 20).shards.len(), 8);
        assert_eq!(BlockCache::<u32, u32>::new(1 << 30).shards.len(), 16);
    }

    #[test]
    fn frequent_entries_survive_cyclic_scans() {
        // Two slots; key 1 is hot, keys 2..=5 cycle. Pure LRU would
        // flush 1 every cycle; frequency protection keeps it resident.
        let cache: BlockCache<u32, u32> = BlockCache::with_shards(200, 1);
        cache.get_or_load(&1, load(1, 100)).unwrap();
        cache.get_or_load(&1, load(1, 100)).unwrap(); // uses = 2
        for round in 0..3 {
            for k in 2..=5u32 {
                cache.get_or_load(&k, load(k, 100)).unwrap();
            }
            let h0 = cache.stats().hits;
            cache.get_or_load(&1, load(1, 100)).unwrap();
            assert_eq!(cache.stats().hits, h0 + 1, "round {round}: hot key evicted");
        }
    }

    #[test]
    fn frequency_decays_so_stale_entries_eventually_yield() {
        // Key 1 earns a high count, then never returns while keys
        // 2..=4 cycle through the other slot. The shield must decay:
        // after enough operations the stale entry is the victim.
        let cache: BlockCache<u32, u32> = BlockCache::with_shards(200, 1);
        for _ in 0..40 {
            cache.get_or_load(&1, load(1, 100)).unwrap();
        }
        for i in 0..16 * DECAY_PERIOD_FLOOR as u32 {
            cache.get_or_load(&(2 + i % 3), load(0, 100)).unwrap();
        }
        assert!(
            !cache.contains(&1),
            "stale hot entry must decay and yield the budget"
        );
    }

    #[test]
    fn contains_and_admits_peek_without_counting() {
        let cache: BlockCache<u32, u32> = BlockCache::with_shards(200, 1);
        assert!(!cache.contains(&1));
        cache.get_or_load(&1, load(1, 100)).unwrap();
        assert!(cache.contains(&1));
        assert!(!cache.contains(&2));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 1), "peeks must not count");
        assert!(cache.admits(200));
        assert!(!cache.admits(201));
        // A peek must not refresh recency: 1 is still the LRU victim.
        cache.get_or_load(&2, load(2, 100)).unwrap();
        cache.contains(&1);
        cache.get_or_load(&3, load(3, 100)).unwrap();
        assert!(!cache.contains(&1), "peek kept the LRU victim alive");
    }

    #[test]
    fn env_override_resolves() {
        // Explicit request wins regardless of the environment.
        assert_eq!(resolve_cache_bytes(Some(42)), Some(42));
    }
}
