//! The pruning abstraction PDXearch is generic over, plus the adaptive
//! checkpoint schedule (§4) and per-block auxiliary pruner data.
//!
//! A [`Pruner`] supplies three things:
//!
//! 1. a query transformation into the space the collection is stored in
//!    (identity for PDX-BOND, a rotation for ADSampling/BSA);
//! 2. an optional query-aware dimension visit order (PDX-BOND);
//! 3. a **branchless survival test**: per checkpoint, a small `Copy`
//!    state is computed once, and `survives(state, partial, aux)` is a
//!    pure comparison evaluated in a tight loop over all candidates —
//!    never interleaved with distance accumulation (Issue #3 of §2.4).

use crate::distance::Metric;
use crate::stats::BlockStats;

/// How many dimensions PDXearch fetches between bound evaluations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepPolicy {
    /// Exponentially growing steps: fetch `start`, then `2·start`, then
    /// `4·start`, … dimensions (the paper's adaptive schedule, §4 and
    /// Figure 7).
    Adaptive {
        /// First step size (the paper starts at 2).
        start: usize,
    },
    /// Fixed-size steps (ADSampling/BSA's original Δd = 32 schedule).
    Fixed {
        /// Step size Δd.
        step: usize,
    },
}

impl Default for StepPolicy {
    fn default() -> Self {
        StepPolicy::Adaptive { start: 2 }
    }
}

/// Cumulative dimensions scanned at each bound evaluation, ending exactly
/// at `dims`.
///
/// ```
/// use pdx_core::pruning::{checkpoints, StepPolicy};
/// assert_eq!(checkpoints(StepPolicy::Adaptive { start: 2 }, 30), vec![2, 6, 14, 30]);
/// assert_eq!(checkpoints(StepPolicy::Fixed { step: 32 }, 96), vec![32, 64, 96]);
/// ```
pub fn checkpoints(policy: StepPolicy, dims: usize) -> Vec<usize> {
    let mut out = Vec::new();
    match policy {
        StepPolicy::Adaptive { start } => {
            let mut step = start.max(1);
            let mut at = 0usize;
            while at < dims {
                at = (at + step).min(dims);
                out.push(at);
                step *= 2;
            }
        }
        StepPolicy::Fixed { step } => {
            let step = step.max(1);
            let mut at = 0usize;
            while at < dims {
                at = (at + step).min(dims);
                out.push(at);
            }
        }
    }
    out
}

/// Per-block auxiliary pruner data, laid out checkpoint-major so the
/// survival loop reads one contiguous row per checkpoint (e.g. BSA's
/// per-vector residual norms).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockAux {
    /// The `dims_scanned` value of each stored checkpoint, ascending.
    pub checkpoint_dims: Vec<u32>,
    /// Vectors per checkpoint row (= block length).
    pub lanes: usize,
    /// `data[ckpt * lanes + vector]`.
    pub data: Vec<f32>,
}

impl BlockAux {
    /// Creates aux storage for the given checkpoint schedule.
    pub fn new(checkpoint_dims: Vec<u32>, lanes: usize) -> Self {
        let data = vec![0.0f32; checkpoint_dims.len() * lanes];
        Self {
            checkpoint_dims,
            lanes,
            data,
        }
    }

    /// The per-vector row for checkpoint index `ci`.
    pub fn row(&self, ci: usize) -> &[f32] {
        &self.data[ci * self.lanes..(ci + 1) * self.lanes]
    }

    /// Mutable row for checkpoint index `ci`.
    pub fn row_mut(&mut self, ci: usize) -> &mut [f32] {
        &mut self.data[ci * self.lanes..(ci + 1) * self.lanes]
    }

    /// Index of the checkpoint whose `dims_scanned` equals `dims`, if any.
    pub fn index_of(&self, dims: usize) -> Option<usize> {
        self.checkpoint_dims.binary_search(&(dims as u32)).ok()
    }
}

/// A dimension-pruning strategy pluggable into PDXearch (§4) and the
/// horizontal baseline search.
pub trait Pruner {
    /// Per-query state (transformed query plus any derived terms).
    type Query;

    /// Per-(block, checkpoint) state for the survival test. Kept `Copy`
    /// and tiny so it lives in registers during the test loop.
    type Checkpoint: Copy;

    /// Whether [`Pruner::survives`] consumes per-vector auxiliary data
    /// (BSA's residual norms). When `false`, PDXearch skips aux lookups.
    const NEEDS_AUX: bool = false;

    /// Short static name of the strategy (for engine-level `kind()`
    /// reporting and logs).
    fn name(&self) -> &'static str {
        "pruner"
    }

    /// The metric whose distances this pruner bounds.
    fn metric(&self) -> Metric;

    /// Transforms a raw query into collection space.
    fn prepare_query(&self, query: &[f32]) -> Self::Query;

    /// The query vector to feed the distance kernels.
    fn query_vector<'q>(&self, q: &'q Self::Query) -> &'q [f32];

    /// Query-aware dimension visit order for a block (`None` = storage
    /// order). `stats` carries the block's per-dimension means.
    fn dim_order(&self, _q: &Self::Query, _stats: Option<&BlockStats>) -> Option<Vec<u32>> {
        None
    }

    /// Computes the survival-test state for one checkpoint.
    ///
    /// `dims_scanned` counts dimensions accumulated so far, `dims_total`
    /// is the full dimensionality, `threshold` the current k-th best
    /// distance.
    fn checkpoint(
        &self,
        q: &Self::Query,
        dims_scanned: usize,
        dims_total: usize,
        threshold: f32,
    ) -> Self::Checkpoint;

    /// Branch-free survival test: `true` keeps the candidate. `aux` is
    /// this vector's value from the block's [`BlockAux`] row (0.0 when
    /// [`Pruner::NEEDS_AUX`] is `false`).
    fn survives(cp: &Self::Checkpoint, partial: f32, aux: f32) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_checkpoints_double() {
        assert_eq!(
            checkpoints(StepPolicy::Adaptive { start: 2 }, 30),
            vec![2, 6, 14, 30]
        );
        assert_eq!(
            checkpoints(StepPolicy::Adaptive { start: 2 }, 100),
            vec![2, 6, 14, 30, 62, 100]
        );
        assert_eq!(
            checkpoints(StepPolicy::Adaptive { start: 1 }, 7),
            vec![1, 3, 7]
        );
    }

    #[test]
    fn fixed_checkpoints_step() {
        assert_eq!(
            checkpoints(StepPolicy::Fixed { step: 32 }, 96),
            vec![32, 64, 96]
        );
        assert_eq!(
            checkpoints(StepPolicy::Fixed { step: 32 }, 100),
            vec![32, 64, 96, 100]
        );
    }

    #[test]
    fn last_checkpoint_is_always_dims() {
        for dims in [1usize, 2, 5, 31, 32, 33, 960, 1536] {
            for policy in [
                StepPolicy::Adaptive { start: 2 },
                StepPolicy::Adaptive { start: 4 },
                StepPolicy::Fixed { step: 32 },
                StepPolicy::Fixed { step: 7 },
            ] {
                let cps = checkpoints(policy, dims);
                assert_eq!(*cps.last().unwrap(), dims, "{policy:?} dims={dims}");
                assert!(
                    cps.windows(2).all(|w| w[0] < w[1]),
                    "not strictly increasing"
                );
            }
        }
    }

    #[test]
    fn zero_start_is_clamped() {
        assert_eq!(
            checkpoints(StepPolicy::Adaptive { start: 0 }, 4),
            vec![1, 3, 4]
        );
        assert_eq!(checkpoints(StepPolicy::Fixed { step: 0 }, 3), vec![1, 2, 3]);
    }

    #[test]
    fn zero_dims_yields_empty_schedule() {
        // A degenerate 0-dimensional collection has no checkpoints at all;
        // callers must not assume `checkpoints(..).last()` exists for it.
        assert_eq!(
            checkpoints(StepPolicy::Adaptive { start: 2 }, 0),
            Vec::<usize>::new()
        );
        assert_eq!(
            checkpoints(StepPolicy::Fixed { step: 32 }, 0),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn single_dimension_schedule() {
        for policy in [
            StepPolicy::Adaptive { start: 1 },
            StepPolicy::Adaptive { start: 2 },
            StepPolicy::Fixed { step: 1 },
            StepPolicy::Fixed { step: 32 },
        ] {
            assert_eq!(checkpoints(policy, 1), vec![1], "{policy:?}");
        }
    }

    #[test]
    fn first_step_larger_than_dims_collapses_to_one_checkpoint() {
        assert_eq!(
            checkpoints(StepPolicy::Adaptive { start: 64 }, 12),
            vec![12]
        );
        assert_eq!(checkpoints(StepPolicy::Fixed { step: 100 }, 12), vec![12]);
    }

    #[test]
    fn default_policy_is_the_papers_adaptive_start_2() {
        assert_eq!(StepPolicy::default(), StepPolicy::Adaptive { start: 2 });
    }

    #[test]
    fn aux_with_single_lane_block() {
        // Single-vector block: every checkpoint row has exactly one lane.
        let mut aux = BlockAux::new(vec![2, 6, 14], 1);
        aux.row_mut(0)[0] = 0.5;
        aux.row_mut(2)[0] = 1.5;
        assert_eq!(aux.row(0), &[0.5]);
        assert_eq!(aux.row(1), &[0.0]);
        assert_eq!(aux.row(2), &[1.5]);
        assert_eq!(aux.index_of(14), Some(2));
    }

    #[test]
    fn aux_rows_are_isolated() {
        let mut aux = BlockAux::new(vec![2, 6], 3);
        aux.row_mut(0).copy_from_slice(&[1.0, 2.0, 3.0]);
        aux.row_mut(1).copy_from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(aux.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(aux.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(aux.index_of(6), Some(1));
        assert_eq!(aux.index_of(5), None);
    }
}
