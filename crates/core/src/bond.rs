//! PDX-BOND (§5): the exact, transformation-free DCO optimizer.
//!
//! PDX-BOND prunes with the *partially computed distance itself* — the
//! cheapest possible lower bound, valid because L2 and L1 partial sums
//! only grow. It needs no preprocessing of the collection (works on raw
//! floats, making it plug-and-play for frequently updated stores) and
//! never trades recall: a pruned vector provably cannot enter the k-NN.
//!
//! What makes it fast despite the weak bound is the PDXearch START phase
//! (a tight threshold from the first block) plus a query-aware dimension
//! visit order ([`VisitOrder`]) that grows the partial distance as fast
//! as possible.

use crate::distance::Metric;
use crate::pruning::Pruner;
use crate::stats::BlockStats;
use crate::visit_order::{dimension_permutation, VisitOrder};

/// The PDX-BOND pruner.
///
/// ```
/// use pdx_core::{PdxBond, Metric, VisitOrder, SearchParams};
/// use pdx_core::collection::PdxCollection;
/// use pdx_core::search::pdxearch;
///
/// // Eight 4-dim vectors in two PDX blocks; query equals vector 5.
/// let rows: Vec<f32> = (0..32).map(|i| (i % 7) as f32).collect();
/// let coll = PdxCollection::from_rows_partitioned(&rows, 8, 4, 4, 64);
/// let bond = PdxBond::new(Metric::L2, VisitOrder::DistanceToMeans);
/// let blocks: Vec<_> = coll.blocks.iter().collect();
/// let hits = pdxearch(&bond, &blocks, &rows[20..24], &SearchParams::new(1));
/// assert_eq!(hits[0].id, 5);
/// assert_eq!(hits[0].distance, 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct PdxBond {
    metric: Metric,
    order: VisitOrder,
}

/// Query state: PDX-BOND uses the raw query unchanged.
#[derive(Debug, Clone)]
pub struct BondQuery {
    query: Vec<f32>,
}

impl PdxBond {
    /// Creates a PDX-BOND pruner.
    ///
    /// # Panics
    /// Panics if `metric` is not monotonic (partial-distance pruning is
    /// unsound for inner product).
    pub fn new(metric: Metric, order: VisitOrder) -> Self {
        assert!(
            metric.is_monotonic(),
            "PDX-BOND requires a monotonic metric (L2/L1); {metric:?} is not"
        );
        Self { metric, order }
    }

    /// The configured visit order.
    pub fn order(&self) -> VisitOrder {
        self.order
    }
}

impl Pruner for PdxBond {
    type Query = BondQuery;
    type Checkpoint = f32;

    fn name(&self) -> &'static str {
        "bond"
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn prepare_query(&self, query: &[f32]) -> BondQuery {
        BondQuery {
            query: query.to_vec(),
        }
    }

    fn query_vector<'q>(&self, q: &'q BondQuery) -> &'q [f32] {
        &q.query
    }

    fn dim_order(&self, q: &BondQuery, stats: Option<&BlockStats>) -> Option<Vec<u32>> {
        dimension_permutation(self.order, &q.query, stats.map(|s| s.means.as_slice()))
    }

    fn checkpoint(
        &self,
        _q: &BondQuery,
        _dims_scanned: usize,
        _dims_total: usize,
        threshold: f32,
    ) -> f32 {
        threshold
    }

    #[inline(always)]
    fn survives(cp: &f32, partial: f32, _aux: f32) -> bool {
        partial <= *cp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survives_is_partial_vs_threshold() {
        assert!(PdxBond::survives(&10.0, 9.9, 0.0));
        assert!(PdxBond::survives(&10.0, 10.0, 0.0));
        assert!(!PdxBond::survives(&10.0, 10.1, 0.0));
    }

    #[test]
    fn infinite_threshold_never_prunes() {
        assert!(PdxBond::survives(&f32::INFINITY, f32::MAX, 0.0));
    }

    #[test]
    fn query_passes_through_unchanged() {
        let bond = PdxBond::new(Metric::L2, VisitOrder::Sequential);
        let q = bond.prepare_query(&[1.0, 2.0, 3.0]);
        assert_eq!(bond.query_vector(&q), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn sequential_order_yields_no_permutation() {
        let bond = PdxBond::new(Metric::L2, VisitOrder::Sequential);
        let q = bond.prepare_query(&[1.0, 2.0]);
        assert!(bond.dim_order(&q, None).is_none());
    }

    #[test]
    fn means_order_uses_block_stats() {
        let bond = PdxBond::new(Metric::L2, VisitOrder::DistanceToMeans);
        let q = bond.prepare_query(&[0.0, 0.0, 0.0]);
        let stats = BlockStats {
            means: vec![1.0, 5.0, 3.0],
            variances: vec![0.0; 3],
        };
        let perm = bond.dim_order(&q, Some(&stats)).unwrap();
        assert_eq!(perm, vec![1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn rejects_inner_product() {
        let _ = PdxBond::new(Metric::NegativeIp, VisitOrder::Sequential);
    }
}
