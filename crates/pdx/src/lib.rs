//! # pdx — Rust reproduction of "PDX: A Data Layout for Vector Similarity Search"
//!
//! Facade crate re-exporting the full public API:
//!
//! * [`core`] ([`pdx_core`]) — the PDX layout, distance kernels, the
//!   PDXearch framework and PDX-BOND.
//! * [`pruners`] ([`pdx_pruners`]) — ADSampling and BSA.
//! * [`index`] ([`pdx_index`]) — IVF and flat-partition substrates.
//! * [`datasets`] ([`pdx_datasets`]) — synthetic Table 1 collections,
//!   `.fvecs` IO, ground truth and recall.
//! * [`engine`] ([`pdx_engine`]) — the dynamic serving layer:
//!   `AnyIndex::open` returns any persisted container as a
//!   `Box<dyn VectorIndex>`.
//! * [`serve`] ([`pdx_serve`]) — the network layer: a std-only TCP
//!   query service (length-prefixed protocol, deadlines, admission
//!   control) and its blocking client.
//! * [`linalg`] ([`pdx_linalg`]) — the linear-algebra substrate.
//! * [`obs`] ([`pdx_obs`]) — the observability substrate: the metric
//!   registry, per-query traces, the slow-query log and the
//!   Prometheus `/metrics` exposition server.
//!
//! ## Quickstart
//!
//! Every deployment answers the same [`prelude::VectorIndex`] calls
//! from the same [`prelude::SearchOptions`]; the defaults are exact
//! search (PDX-BOND, distance-to-means order, L2).
//!
//! ```
//! use pdx::prelude::*;
//!
//! // 1 000 vectors of 32 dims, clustered like a "DEEP"-shaped dataset.
//! let spec = DatasetSpec { name: "demo", dims: 32, distribution: Distribution::Normal, paper_size: 0 };
//! let ds = generate(&spec, 1_000, 1, 42);
//!
//! // Exact search with PDX-BOND: no preprocessing, no recall loss.
//! let flat = FlatPdx::with_defaults(&ds.data, ds.len, ds.dims());
//! let index: &dyn VectorIndex = &flat;
//! let hits = index.search(ds.query(0), &SearchOptions::new(10));
//! assert_eq!(hits.len(), 10);
//! let exact = flat.linear_search(ds.query(0), 10, Metric::L2);
//! assert_eq!(hits[0].id, exact[0].id);
//! ```
//!
//! ## Serving from disk: `AnyIndex::open`
//!
//! A container written by `pdx-cli build` (or
//! [`datasets::persist`] directly) opens as
//! whichever deployment it holds — `PDX1` (f32) or `PDX2` (SQ8) — with
//! no branching at the call site:
//!
//! ```
//! use pdx::prelude::*;
//!
//! let spec = DatasetSpec { name: "demo", dims: 16, distribution: Distribution::Normal, paper_size: 0 };
//! let ds = generate(&spec, 400, 1, 11);
//! let flat = FlatPdx::with_defaults(&ds.data, ds.len, ds.dims());
//!
//! let path = std::env::temp_dir().join("pdx_facade_doc.pdx");
//! pdx::datasets::persist::write_pdx_path(&path, &flat.collection)?;
//!
//! let index = AnyIndex::open(&path)?; // Box<dyn VectorIndex>, kind sniffed
//! assert_eq!(index.kind(), "flat-pdx");
//! assert_eq!(index.dims(), 16);
//! // Bit-identical to searching the in-memory deployment.
//! let hits = index.search(ds.query(0), &SearchOptions::new(5));
//! let direct: &dyn VectorIndex = &flat;
//! assert_eq!(hits, direct.search(ds.query(0), &SearchOptions::new(5)));
//! std::fs::remove_file(&path).ok();
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! ## Quantized (SQ8) search
//!
//! The same collection can be served from 4×-smaller SQ8 blocks with a
//! two-phase search: a quantized PDXearch scan collects `refine · k`
//! candidates, then the exact `f32` distances of just those candidates
//! decide the final top-k.
//!
//! ```
//! use pdx::prelude::*;
//!
//! let spec = DatasetSpec { name: "demo", dims: 32, distribution: Distribution::Normal, paper_size: 0 };
//! let ds = generate(&spec, 1_000, 1, 42);
//!
//! let sq8 = FlatSq8::with_defaults(&ds.data, ds.len, ds.dims());
//! // The scan payload is a quarter of the f32 bytes.
//! assert_eq!(sq8.resident_block_bytes() * 4, ds.data.len() * 4);
//! let hits = sq8.search(ds.query(0), 10, DEFAULT_REFINE, Metric::L2);
//! assert_eq!(hits.len(), 10);
//!
//! // Rerank distances are exact, so the top hit matches exact search.
//! let flat = FlatPdx::with_defaults(&ds.data, ds.len, ds.dims());
//! let exact = flat.linear_search(ds.query(0), 10, Metric::L2);
//! assert_eq!(hits[0].id, exact[0].id);
//! ```

//! ## Parallel batch search
//!
//! Every deployment serves query batches through the execution engine
//! ([`pdx_core::exec`]): queries shard across a scoped-thread worker
//! pool, and results are **bit-identical to the sequential path at any
//! thread count** (`0` means the default width — the `PDX_THREADS`
//! environment override, then the hardware parallelism).
//!
//! ```
//! use pdx::prelude::*;
//!
//! let spec = DatasetSpec { name: "demo", dims: 16, distribution: Distribution::Normal, paper_size: 0 };
//! let ds = generate(&spec, 500, 8, 7);
//! let flat = FlatPdx::with_defaults(&ds.data, ds.len, ds.dims());
//! let bond = PdxBond::new(Metric::L2, VisitOrder::DistanceToMeans);
//! let params = SearchParams::new(5);
//!
//! let batch = flat.search_batch(&bond, &ds.queries, &params, 4);
//! for (qi, hits) in batch.iter().enumerate() {
//!     assert_eq!(hits, &flat.search(&bond, ds.query(qi), &params));
//! }
//! ```
//!
//! ## Mutable collections
//!
//! [`store`] ([`pdx_store`]) adds the LSM-style mutable layer: inserts
//! land in a write buffer, seal into immutable PDX segments, deletes
//! tombstone sealed rows, and `compact()` rewrites the survivors —
//! all served through the same [`prelude::VectorIndex`] trait (and, for
//! persistent collections, crash-safe via a WAL and a `PDX3` manifest
//! that [`prelude::AnyIndex::open`] sniffs). Collections are safe to
//! share across threads: reads run lock-free against immutable
//! snapshots, and sealing/compaction can run as background jobs
//! (`compact_background()`) concurrently with reads and writes.
//!
//! ```
//! use pdx::prelude::*;
//!
//! let coll = Collection::in_memory(2, StoreConfig::default());
//! for i in 0..100u64 {
//!     coll.insert(i, &[i as f32, 0.0])?;
//! }
//! coll.delete(1)?;
//! let hits = coll.search(&[0.0, 0.0], &SearchOptions::new(2));
//! let ids: Vec<u64> = hits.iter().map(|n| n.id).collect();
//! assert_eq!(ids, vec![0, 2]); // id 1 is gone
//! coll.compact()?; // purge the tombstone, rewrite the blocks
//! assert_eq!(coll.len(), 99);
//! # Ok::<(), StoreError>(())
//! ```

pub use pdx_core as core;
pub use pdx_datasets as datasets;
pub use pdx_engine as engine;
pub use pdx_index as index;
pub use pdx_linalg as linalg;
pub use pdx_obs as obs;
pub use pdx_pruners as pruners;
pub use pdx_serve as serve;
pub use pdx_store as store;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use pdx_core::bond::PdxBond;
    pub use pdx_core::cache::{resolve_cache_bytes, BlockCache, CacheStats, CACHE_BYTES_ENV};
    pub use pdx_core::collection::{PdxCollection, SearchBlock};
    pub use pdx_core::distance::{normalize, Metric};
    pub use pdx_core::engine::{
        PrunerKind, SearchOptions, SearchSegment, SegmentedSearch, VectorIndex, DEFAULT_EF,
    };
    pub use pdx_core::exec::{
        merge_neighbors, parallel_block_search, resolve_threads, BatchSearcher, ThreadPool,
        THREADS_ENV,
    };
    pub use pdx_core::heap::{KnnHeap, Neighbor};
    pub use pdx_core::kernels::{
        active_kernel_isa, detected_isa, dsm_scan, gather_scan, nary_distance, pdx_scan,
        pdx_scan_policy, sq8_distance_scalar, sq8_scan, sq8_scan_policy, KernelIsa, KernelPolicy,
        KernelVariant,
    };
    pub use pdx_core::layout::{
        DsmMatrix, DualBlockMatrix, NaryMatrix, PdxBlock, QuantizedPdxBlock, Sq8Quantizer, Sq8Query,
    };
    pub use pdx_core::profile::SearchProfile;
    pub use pdx_core::pruning::{checkpoints, BlockAux, Pruner, StepPolicy};
    pub use pdx_core::search::{
        horizontal_linear_scan, horizontal_pruned_search, linear_scan_dsm, linear_scan_nary,
        linear_scan_pdx, pdxearch, sq8_rerank, sq8_search, sq8_two_phase, HorizontalBucket,
        SearchParams, Sq8Block, DEFAULT_REFINE,
    };
    pub use pdx_core::stats::BlockStats;
    pub use pdx_core::visit_order::VisitOrder;
    pub use pdx_core::{DEFAULT_EXACT_BLOCK, DEFAULT_GROUP_SIZE};
    pub use pdx_datasets::eval::{ground_truth, mean_recall, recall_at_k};
    pub use pdx_datasets::persist::{IvfBucketEntry, IvfMeta};
    pub use pdx_datasets::synthetic::{
        generate, spec_by_name, Dataset, DatasetSpec, Distribution, TABLE1,
    };
    pub use pdx_engine::{AnyIndex, OpenOptions, PrunedFlat, PrunedIvf};
    pub use pdx_index::{
        FlatPdx, FlatSq8, Hnsw, HnswParams, IvfHorizontal, IvfIndex, IvfPdx, IvfSq8, KMeans,
        LazyIvf,
    };
    pub use pdx_pruners::{AdSampling, Bsa, BsaLearned};
    pub use pdx_serve::{
        Backend, BackendReadings, Client as ServeClient, ClientError, ErrorKind as ServeErrorKind,
        ServeConfig, Server, StatsReport,
    };
    pub use pdx_store::{
        Collection, GroupCommit, MaintenanceJob, SegmentStat, ShardedCollection, Snapshot,
        StoreConfig, StoreError, WriteBuffer, SHARDS_FILE,
    };
}
