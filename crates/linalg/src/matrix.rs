//! A minimal dense row-major `f32` matrix with the handful of operations
//! the PDX pipeline needs: transposed products for covariance, and a
//! cache-blocked multi-threaded `A · Bᵀ` used to rotate whole vector
//! collections (ADSampling / BSA preprocessing).

/// Dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match dimensions");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element at `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Returns the transposed matrix.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// `y = self · x` for a column vector `x`.
    ///
    /// This is the per-query rotation of ADSampling/BSA (`D × D` matrix,
    /// every query), so the dot product uses eight independent
    /// accumulators to auto-vectorize.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "vector length must equal cols");
        let mut y = vec![0.0f32; self.rows];
        for (r, out) in y.iter_mut().enumerate() {
            let row = self.row(r);
            const U: usize = 8;
            let mut acc = [0.0f32; U];
            let main = row.len() / U * U;
            for (rc, xc) in row[..main].chunks_exact(U).zip(x[..main].chunks_exact(U)) {
                for i in 0..U {
                    acc[i] += rc[i] * xc[i];
                }
            }
            let mut tail = 0.0f32;
            for (a, b) in row[main..].iter().zip(&x[main..]) {
                tail += a * b;
            }
            *out = ((acc[0] + acc[1]) + (acc[2] + acc[3]))
                + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
                + tail;
        }
        y
    }

    /// `C = self · otherᵀ`, i.e. `C[i][j] = dot(self.row(i), other.row(j))`.
    ///
    /// Both operands are row-major, so the inner kernel streams two rows —
    /// the layout used when rotating a collection (`rows` = vectors) by a
    /// transform matrix stored row-per-output-dimension. Work runs on the
    /// shared execution pool ([`pdx_core::exec::ThreadPool`]) in
    /// dynamically scheduled row bands; `threads = 0` resolves the
    /// default width (`PDX_THREADS` env override, then hardware
    /// parallelism). An empty result (`self.rows() == 0` or
    /// `other.rows() == 0`) returns immediately without touching the
    /// pool.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn mul_transposed(&self, other: &Matrix, threads: usize) -> Matrix {
        assert_eq!(self.cols, other.cols, "inner dimensions must agree");
        let m = self.rows;
        let n = other.rows;
        let mut out = Matrix::zeros(m, n);
        if m == 0 || n == 0 {
            return out; // degenerate: nothing to compute, no threads spawned
        }
        let pool = pdx_core::exec::ThreadPool::new(threads);
        // Row-band chunks sized so each worker gets ~4 bands to steal
        // from, bounded below so tiny products stay single-chunk.
        let band_rows = m.div_ceil(pool.threads() * 4).max(1);
        let a = self;
        let b = other;
        pool.for_each_chunk_mut(&mut out.data, band_rows * n, |start, chunk| {
            mul_transposed_band(a, b, start / n, chunk.len() / n, chunk);
        });
        out
    }
}

/// Computes rows `[start, start + rows_here)` of `A · Bᵀ` into `chunk`.
fn mul_transposed_band(a: &Matrix, b: &Matrix, start: usize, rows_here: usize, chunk: &mut [f32]) {
    let n = b.rows();
    debug_assert_eq!(chunk.len(), rows_here * n);
    // Tile over output columns so the B rows in a tile stay cache-resident
    // while we sweep the band of A rows.
    const COL_TILE: usize = 64;
    for (ri, out_row) in chunk.chunks_exact_mut(n).enumerate() {
        let arow = a.row(start + ri);
        let mut c0 = 0;
        while c0 < n {
            let c1 = (c0 + COL_TILE).min(n);
            for (c, out) in out_row[c0..c1].iter_mut().enumerate() {
                let brow = b.row(c0 + c);
                let mut acc = 0.0f32;
                // Four independent accumulators break the FP dependency
                // chain; LLVM vectorizes this cleanly.
                let mut s = [0.0f32; 4];
                let quads = arow.len() / 4 * 4;
                for i in (0..quads).step_by(4) {
                    s[0] += arow[i] * brow[i];
                    s[1] += arow[i + 1] * brow[i + 1];
                    s[2] += arow[i + 2] * brow[i + 2];
                    s[3] += arow[i + 3] * brow[i + 3];
                }
                for i in quads..arow.len() {
                    acc += arow[i] * brow[i];
                }
                *out = acc + (s[0] + s[1]) + (s[2] + s[3]);
            }
            c0 = c1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_mul_transposed(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.rows());
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let dot: f32 = a.row(i).iter().zip(b.row(j)).map(|(x, y)| x * y).sum();
                out.set(i, j, dot);
            }
        }
        out
    }

    #[test]
    fn identity_is_identity() {
        let i3 = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i3.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn matvec_matches_manual() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = m.matvec(&[1.0, 0.0, -1.0]);
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn mul_transposed_matches_naive_single_thread() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, -1.0]);
        let got = a.mul_transposed(&b, 1);
        assert_eq!(got, naive_mul_transposed(&a, &b));
    }

    #[test]
    fn mul_transposed_matches_naive_multi_thread() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let a = Matrix::from_vec(37, 19, (0..37 * 19).map(|_| rng.random::<f32>()).collect());
        let b = Matrix::from_vec(23, 19, (0..23 * 19).map(|_| rng.random::<f32>()).collect());
        let got = a.mul_transposed(&b, 8);
        let want = naive_mul_transposed(&a, &b);
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((g - w).abs() < 1e-4, "{g} vs {w}");
        }
    }

    #[test]
    fn mul_transposed_identity_is_noop() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let i = Matrix::identity(3);
        assert_eq!(a.mul_transposed(&i, 2), a);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mul_transposed_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 4);
        let _ = a.mul_transposed(&b, 1);
    }

    #[test]
    fn mul_transposed_empty_operands_are_degenerate_noops() {
        // No rows on either side must produce the empty/zero result
        // without spawning zero-work threads, at any requested width.
        for threads in [0usize, 1, 8] {
            let empty = Matrix::zeros(0, 5);
            let b = Matrix::zeros(3, 5);
            let c = empty.mul_transposed(&b, threads);
            assert_eq!((c.rows(), c.cols()), (0, 3));
            assert!(c.as_slice().is_empty());

            let a = Matrix::zeros(4, 5);
            let no_rows = Matrix::zeros(0, 5);
            let c = a.mul_transposed(&no_rows, threads);
            assert_eq!((c.rows(), c.cols()), (4, 0));
            assert!(c.as_slice().is_empty());
        }
    }

    #[test]
    fn mul_transposed_is_thread_count_independent() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let a = Matrix::from_vec(53, 17, (0..53 * 17).map(|_| rng.random::<f32>()).collect());
        let b = Matrix::from_vec(29, 17, (0..29 * 17).map(|_| rng.random::<f32>()).collect());
        let want = a.mul_transposed(&b, 1);
        for threads in [2usize, 4, 16] {
            assert_eq!(a.mul_transposed(&b, threads), want, "threads = {threads}");
        }
    }
}
