//! Dense linear-algebra substrate for the PDX vector-similarity-search
//! reproduction.
//!
//! The PDX paper (Kuffo, Krippner, Boncz; SIGMOD 2025) builds on two
//! dimension-pruning algorithms that both require a one-time linear
//! transformation of the vector collection:
//!
//! * **ADSampling** rotates the collection with a *random orthogonal
//!   matrix* so that any prefix of dimensions is a uniform random sample
//!   of the vector's energy ([`orthogonal`]).
//! * **BSA** rotates the collection onto its *principal components* so
//!   that the leading dimensions carry most of the energy ([`pca`],
//!   backed by the symmetric eigensolver in [`eigen`]).
//!
//! Neither transformation needs external BLAS/LAPACK: this crate provides
//! a cache-blocked, multi-threaded matrix product, Householder QR, a
//! Householder-tridiagonalisation + implicit-QL symmetric eigensolver, and
//! ordinary least squares (used by the learned BSA ablation). Decomposition
//! internals run in `f64` for stability; vector data stays `f32`.

pub mod eigen;
pub mod matrix;
pub mod ols;
pub mod orthogonal;
pub mod pca;

pub use eigen::SymmetricEigen;
pub use matrix::Matrix;
pub use ols::LinearRegression;
pub use orthogonal::random_orthogonal;
pub use pca::Pca;

/// Deterministic standard-normal sampler (Box–Muller on top of any
/// [`rand::Rng`]), avoiding an extra `rand_distr` dependency.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gaussian {
    spare: Option<f64>,
}

impl Gaussian {
    /// Creates a sampler with an empty spare slot.
    pub fn new() -> Self {
        Self { spare: None }
    }

    /// Draws one standard-normal `f64`.
    pub fn sample<R: rand::Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        // Box–Muller: two uniforms in (0, 1] -> two independent normals.
        loop {
            let u1: f64 = rng.random::<f64>();
            let u2: f64 = rng.random::<f64>();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let r = (-2.0 * u1.ln()).sqrt();
            let (sin, cos) = (std::f64::consts::TAU * u2).sin_cos();
            self.spare = Some(r * sin);
            return r * cos;
        }
    }

    /// Draws one standard-normal `f32`.
    pub fn sample_f32<R: rand::Rng + ?Sized>(&mut self, rng: &mut R) -> f32 {
        self.sample(rng) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments_are_standard_normal() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut g = Gaussian::new();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn gaussian_uses_spare_sample() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = Gaussian::new();
        let _ = g.sample(&mut rng);
        assert!(g.spare.is_some());
        let _ = g.sample(&mut rng);
        assert!(g.spare.is_none());
    }
}
