//! Symmetric eigensolver: Householder tridiagonalisation (`tred2`)
//! followed by the implicit-shift QL algorithm (`tql2`), the classic
//! EISPACK pair. `O(n³)` once for the reduction, then `O(n²)` per QL
//! iteration — fast enough for the `D ≤ 1536` covariance matrices the BSA
//! preprocessing needs, with no external LAPACK.

/// Eigendecomposition of a real symmetric matrix.
///
/// Produced by [`SymmetricEigen::new`]; eigenvalues are sorted in
/// **descending** order (the order PCA wants) and `eigenvectors.row(k)`
/// is the unit eigenvector for `eigenvalues[k]`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, descending.
    pub eigenvalues: Vec<f64>,
    /// Row `k` is the eigenvector paired with `eigenvalues[k]`.
    pub eigenvectors: Vec<Vec<f64>>,
}

impl SymmetricEigen {
    /// Decomposes a symmetric `n × n` matrix given in row-major order.
    ///
    /// Only the values of the full matrix are read (no symmetry repair is
    /// attempted); callers should pass an exactly symmetric buffer.
    ///
    /// # Panics
    /// Panics if `a.len() != n * n` or if QL fails to converge within 50
    /// iterations per eigenvalue (numerically pathological input).
    pub fn new(a: &[f64], n: usize) -> Self {
        assert_eq!(a.len(), n * n, "matrix buffer does not match n");
        if n == 0 {
            return Self {
                eigenvalues: Vec::new(),
                eigenvectors: Vec::new(),
            };
        }
        let mut z = a.to_vec();
        let mut d = vec![0.0f64; n];
        let mut e = vec![0.0f64; n];
        tred2(&mut z, n, &mut d, &mut e);
        tql2(&mut z, n, &mut d, &mut e);
        // z now holds eigenvectors in its *columns*; d holds eigenvalues
        // (ascending-ish but unordered in general). Sort descending.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).expect("NaN eigenvalue"));
        let eigenvalues: Vec<f64> = order.iter().map(|&i| d[i]).collect();
        let eigenvectors: Vec<Vec<f64>> = order
            .iter()
            .map(|&col| (0..n).map(|row| z[row * n + col]).collect())
            .collect();
        Self {
            eigenvalues,
            eigenvectors,
        }
    }
}

/// Householder reduction of a real symmetric matrix to tridiagonal form.
/// On exit `z` holds the orthogonal transform Q (as columns), `d` the
/// diagonal and `e` the sub-diagonal. Port of EISPACK `tred2`.
fn tred2(z: &mut [f64], n: usize, d: &mut [f64], e: &mut [f64]) {
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let mut scale = 0.0;
            for k in 0..=l {
                scale += z[i * n + k].abs();
            }
            if scale == 0.0 {
                e[i] = z[i * n + l];
            } else {
                for k in 0..=l {
                    z[i * n + k] /= scale;
                    h += z[i * n + k] * z[i * n + k];
                }
                let mut f = z[i * n + l];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[i * n + l] = f - g;
                f = 0.0;
                for j in 0..=l {
                    z[j * n + i] = z[i * n + j] / h;
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += z[j * n + k] * z[i * n + k];
                    }
                    for k in j + 1..=l {
                        g += z[k * n + j] * z[i * n + k];
                    }
                    e[j] = g / h;
                    f += e[j] * z[i * n + j];
                }
                let hh = f / (h + h);
                for j in 0..=l {
                    let f = z[i * n + j];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        z[j * n + k] -= f * e[k] + g * z[i * n + k];
                    }
                }
            }
        } else {
            e[i] = z[i * n + l];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        let l = i;
        if d[i] != 0.0 {
            for j in 0..l {
                let mut g = 0.0;
                for k in 0..l {
                    g += z[i * n + k] * z[k * n + j];
                }
                for k in 0..l {
                    z[k * n + j] -= g * z[k * n + i];
                }
            }
        }
        d[i] = z[i * n + i];
        z[i * n + i] = 1.0;
        for j in 0..l {
            z[j * n + i] = 0.0;
            z[i * n + j] = 0.0;
        }
    }
}

/// Implicit-shift QL with eigenvector accumulation. Port of EISPACK
/// `tql2`; on exit `d` holds eigenvalues and the columns of `z` the
/// eigenvectors.
fn tql2(z: &mut [f64], n: usize, d: &mut [f64], e: &mut [f64]) {
    if n <= 1 {
        return;
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small sub-diagonal element to split the problem.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(iter <= 50, "tql2 failed to converge at eigenvalue {l}");
            // Form the implicit shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    f = z[k * n + i + 1];
                    z[k * n + i + 1] = s * z[k * n + i] + c * f;
                    z[k * n + i] = c * z[k * n + i] - s * f;
                }
            }
            if r == 0.0 && m > l {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_decomposition(a: &[f64], n: usize, tol: f64) {
        let eig = SymmetricEigen::new(a, n);
        // A v = λ v for every pair.
        for (k, v) in eig.eigenvectors.iter().enumerate() {
            let lambda = eig.eigenvalues[k];
            for i in 0..n {
                let mut av = 0.0;
                for j in 0..n {
                    av += a[i * n + j] * v[j];
                }
                assert!(
                    (av - lambda * v[i]).abs() < tol,
                    "eigenpair {k}: (Av)[{i}]={av} vs λv={}",
                    lambda * v[i]
                );
            }
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < tol, "eigenvector {k} norm {norm}");
        }
        // Descending order.
        for w in eig.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - tol, "eigenvalues not descending: {w:?}");
        }
    }

    #[test]
    fn diagonal_matrix() {
        let a = [3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0];
        let eig = SymmetricEigen::new(&a, 3);
        assert!((eig.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((eig.eigenvalues[1] - 2.0).abs() < 1e-12);
        assert!((eig.eigenvalues[2] - 1.0).abs() < 1e-12);
        check_decomposition(&a, 3, 1e-10);
    }

    #[test]
    fn known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let a = [2.0, 1.0, 1.0, 2.0];
        let eig = SymmetricEigen::new(&a, 2);
        assert!((eig.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((eig.eigenvalues[1] - 1.0).abs() < 1e-12);
        check_decomposition(&a, 2, 1e-10);
    }

    #[test]
    fn random_symmetric_matrices() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 24;
            let mut a = vec![0.0f64; n * n];
            for i in 0..n {
                for j in 0..=i {
                    let v: f64 = rng.random::<f64>() - 0.5;
                    a[i * n + j] = v;
                    a[j * n + i] = v;
                }
            }
            check_decomposition(&a, n, 1e-8);
        }
    }

    #[test]
    fn rank_deficient_matrix() {
        // Outer product u uᵀ has one nonzero eigenvalue = |u|².
        let u = [1.0, 2.0, 2.0];
        let mut a = vec![0.0f64; 9];
        for i in 0..3 {
            for j in 0..3 {
                a[i * 3 + j] = u[i] * u[j];
            }
        }
        let eig = SymmetricEigen::new(&a, 3);
        assert!((eig.eigenvalues[0] - 9.0).abs() < 1e-10);
        assert!(eig.eigenvalues[1].abs() < 1e-10);
        assert!(eig.eigenvalues[2].abs() < 1e-10);
    }

    #[test]
    fn empty_and_single() {
        let eig = SymmetricEigen::new(&[], 0);
        assert!(eig.eigenvalues.is_empty());
        let eig = SymmetricEigen::new(&[5.0], 1);
        assert_eq!(eig.eigenvalues, vec![5.0]);
        assert_eq!(eig.eigenvectors, vec![vec![1.0]]);
    }
}
