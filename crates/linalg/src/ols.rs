//! Ordinary least squares on a small, fixed number of features.
//!
//! The learned BSA variant (BSA_pca in the paper) fits, per pruning
//! checkpoint, a regression that predicts the true remaining distance
//! from cheaply computable bound features. The feature count is tiny
//! (≤ 4), so the normal equations with Gaussian elimination in `f64` are
//! plenty.

/// A fitted linear model `y ≈ w · x + b`.
#[derive(Debug, Clone)]
pub struct LinearRegression {
    /// Feature weights.
    pub weights: Vec<f64>,
    /// Intercept.
    pub intercept: f64,
}

impl LinearRegression {
    /// Fits `y ≈ w·x + b` by solving the normal equations.
    ///
    /// `xs` holds one feature row per observation. A tiny ridge term
    /// (`1e-9 · trace/n`) keeps the system solvable for degenerate
    /// features.
    ///
    /// # Panics
    /// Panics if `xs` and `ys` disagree in length, if `xs` is empty, or
    /// if feature rows have inconsistent lengths.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "one target per observation required");
        assert!(!xs.is_empty(), "cannot fit on zero observations");
        let k = xs[0].len();
        // Augment with the intercept column: solve for [w; b].
        let dim = k + 1;
        let mut ata = vec![0.0f64; dim * dim];
        let mut aty = vec![0.0f64; dim];
        let mut row = vec![0.0f64; dim];
        for (x, &y) in xs.iter().zip(ys) {
            assert_eq!(x.len(), k, "inconsistent feature arity");
            row[..k].copy_from_slice(x);
            row[k] = 1.0;
            for i in 0..dim {
                aty[i] += row[i] * y;
                for j in 0..dim {
                    ata[i * dim + j] += row[i] * row[j];
                }
            }
        }
        // Ridge jitter for numerical safety.
        let trace: f64 = (0..dim).map(|i| ata[i * dim + i]).sum();
        let jitter = 1e-9 * (trace / dim as f64).max(1.0);
        for i in 0..dim {
            ata[i * dim + i] += jitter;
        }
        let sol = solve_dense(&mut ata, &mut aty, dim);
        Self {
            weights: sol[..k].to_vec(),
            intercept: sol[k],
        }
    }

    /// Predicts `y` for one feature row.
    ///
    /// # Panics
    /// Panics if `x.len()` differs from the fitted arity.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature arity mismatch");
        self.intercept + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
    }
}

/// Solves `A x = b` in place with partial-pivot Gaussian elimination.
fn solve_dense(a: &mut [f64], b: &mut [f64], n: usize) -> Vec<f64> {
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        for r in col + 1..n {
            if a[r * n + col].abs() > a[pivot * n + col].abs() {
                pivot = r;
            }
        }
        if pivot != col {
            for c in 0..n {
                a.swap(col * n + c, pivot * n + c);
            }
            b.swap(col, pivot);
        }
        let p = a[col * n + col];
        debug_assert!(p != 0.0, "singular normal-equation matrix");
        for r in col + 1..n {
            let factor = a[r * n + col] / p;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                a[r * n + c] -= factor * a[col * n + c];
            }
            b[r] -= factor * b[col];
        }
    }
    let mut x = vec![0.0f64; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for c in col + 1..n {
            acc -= a[col * n + c] * x[c];
        }
        x[col] = acc / a[col * n + col];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_line() {
        // y = 2x + 3
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| 2.0 * i as f64 + 3.0).collect();
        let m = LinearRegression::fit(&xs, &ys);
        assert!((m.weights[0] - 2.0).abs() < 1e-6);
        assert!((m.intercept - 3.0).abs() < 1e-6);
        assert!((m.predict(&[100.0]) - 203.0).abs() < 1e-4);
    }

    #[test]
    fn recovers_two_features() {
        // y = 1.5a - 0.5b + 1
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for a in 0..6 {
            for b in 0..6 {
                xs.push(vec![a as f64, b as f64]);
                ys.push(1.5 * a as f64 - 0.5 * b as f64 + 1.0);
            }
        }
        let m = LinearRegression::fit(&xs, &ys);
        assert!((m.weights[0] - 1.5).abs() < 1e-6);
        assert!((m.weights[1] + 0.5).abs() < 1e-6);
        assert!((m.intercept - 1.0).abs() < 1e-6);
    }

    #[test]
    fn noisy_fit_is_close() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..2000 {
            let x = rng.random::<f64>() * 10.0;
            xs.push(vec![x]);
            ys.push(4.0 * x - 2.0 + (rng.random::<f64>() - 0.5) * 0.1);
        }
        let m = LinearRegression::fit(&xs, &ys);
        assert!((m.weights[0] - 4.0).abs() < 0.01);
        assert!((m.intercept + 2.0).abs() < 0.05);
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let xs: Vec<Vec<f64>> = (0..8).map(|_| vec![1.0]).collect();
        let ys: Vec<f64> = (0..8).map(|_| 5.0).collect();
        let m = LinearRegression::fit(&xs, &ys);
        assert!((m.predict(&[1.0]) - 5.0).abs() < 1e-3);
    }
}
