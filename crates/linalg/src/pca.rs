//! Principal component analysis for the BSA preprocessing step.
//!
//! BSA (Yang et al., 2024) replaces ADSampling's random rotation with a
//! PCA rotation: after projecting onto the eigenvectors of the data
//! covariance (sorted by decreasing eigenvalue), the leading dimensions
//! carry most of the distance mass, so partial distances converge to the
//! full distance after scanning only a few dimensions. Because the
//! projection is orthonormal, L2 distances are preserved exactly.

use crate::{Matrix, SymmetricEigen};

/// A fitted PCA rotation: an orthonormal basis of principal axes plus the
/// per-axis variances (eigenvalues) and the training mean.
#[derive(Debug, Clone)]
pub struct Pca {
    /// `dim × dim` rotation; row `k` is the k-th principal axis.
    pub components: Matrix,
    /// Variance captured by each axis, descending.
    pub explained_variance: Vec<f64>,
    /// Per-dimension mean of the training sample.
    pub mean: Vec<f32>,
}

impl Pca {
    /// Fits a full-rank PCA on `sample` (rows = vectors).
    ///
    /// The covariance is estimated from at most `max_sample_rows` rows
    /// (pass `usize::MAX` to use all); the eigensolve itself is `O(d³)`.
    ///
    /// # Panics
    /// Panics if the sample is empty.
    pub fn fit(sample: &Matrix, max_sample_rows: usize) -> Self {
        let n = sample.rows().min(max_sample_rows);
        assert!(n > 0, "cannot fit PCA on an empty sample");
        let d = sample.cols();
        // Mean in f64 to avoid cancellation over large samples.
        let mut mean64 = vec![0.0f64; d];
        for r in 0..n {
            for (m, v) in mean64.iter_mut().zip(sample.row(r)) {
                *m += *v as f64;
            }
        }
        for m in &mut mean64 {
            *m /= n as f64;
        }
        // Covariance = CᵀC / (n−1) on the centered sample. C is stored
        // dimension-major so each cov row is a run of long dot products —
        // cache-friendly and parallel over output-row bands.
        let mut centered_t = vec![0.0f64; d * n];
        for r in 0..n {
            for (c, (v, m)) in sample.row(r).iter().zip(&mean64).enumerate() {
                centered_t[c * n + r] = *v as f64 - m;
            }
        }
        let denom = (n.max(2) - 1) as f64;
        let mut cov = vec![0.0f64; d * d];
        // Covariance rows are independent; let the shared pool schedule
        // them in bands (rows near the top of the upper triangle carry
        // more dot products, so dynamic chunks balance better than one
        // fixed band per worker).
        let pool = pdx_core::exec::ThreadPool::from_env();
        let band = d.div_ceil(pool.threads() * 4).max(1);
        let centered_t = &centered_t;
        pool.for_each_chunk_mut(&mut cov, band * d, |start, chunk| {
            for (bi, out_row) in chunk.chunks_exact_mut(d).enumerate() {
                let i = start / d + bi;
                let ci = &centered_t[i * n..(i + 1) * n];
                // Upper triangle only; mirrored below.
                for (j, out) in out_row.iter_mut().enumerate().skip(i) {
                    let cj = &centered_t[j * n..(j + 1) * n];
                    let mut acc = 0.0f64;
                    for (a, b) in ci.iter().zip(cj) {
                        acc += a * b;
                    }
                    *out = acc / denom;
                }
            }
        });
        for i in 0..d {
            for j in i + 1..d {
                cov[j * d + i] = cov[i * d + j];
            }
        }
        let eig = SymmetricEigen::new(&cov, d);
        let mut components = Matrix::zeros(d, d);
        for (k, v) in eig.eigenvectors.iter().enumerate() {
            for (c, x) in v.iter().enumerate() {
                components.set(k, c, *x as f32);
            }
        }
        Self {
            components,
            explained_variance: eig.eigenvalues,
            mean: mean64.iter().map(|m| *m as f32).collect(),
        }
    }

    /// Rotates one vector onto the principal axes (no centering — BSA
    /// rotates queries and data identically so that L2 distances are
    /// preserved; the mean cancels in every pairwise difference).
    pub fn rotate(&self, v: &[f32]) -> Vec<f32> {
        self.components.matvec(v)
    }

    /// Rotates a whole collection (rows = vectors), multi-threaded.
    pub fn rotate_rows(&self, rows: &Matrix, threads: usize) -> Matrix {
        rows.mul_transposed(&self.components, threads)
    }

    /// Sum of trailing eigenvalues `Σ_{k ≥ from_axis} λ_k`: the expected
    /// residual energy after scanning the first `from_axis` rotated
    /// dimensions. BSA uses this to size its error quantiles.
    pub fn residual_variance(&self, from_axis: usize) -> f64 {
        self.explained_variance[from_axis.min(self.explained_variance.len())..]
            .iter()
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Sample with variance 9 along a known axis and 1 along the rest.
    fn anisotropic_sample(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = crate::Gaussian::new();
        let mut data = vec![0.0f32; n * d];
        for r in 0..n {
            for c in 0..d {
                let scale = if c == 1 { 3.0 } else { 1.0 };
                data[r * d + c] = scale * g.sample_f32(&mut rng);
            }
        }
        let _ = rng.random::<u8>();
        Matrix::from_vec(n, d, data)
    }

    #[test]
    fn first_component_finds_high_variance_axis() {
        let sample = anisotropic_sample(4000, 6, 3);
        let pca = Pca::fit(&sample, usize::MAX);
        // Leading eigenvalue ≈ 9, others ≈ 1.
        assert!(
            (pca.explained_variance[0] - 9.0).abs() < 1.0,
            "{:?}",
            pca.explained_variance
        );
        // Leading axis ≈ ±e_1.
        let axis = pca.components.row(0);
        assert!(axis[1].abs() > 0.99, "axis {axis:?}");
    }

    #[test]
    fn explained_variance_is_descending_and_nonnegative() {
        let sample = anisotropic_sample(1000, 8, 4);
        let pca = Pca::fit(&sample, usize::MAX);
        for w in pca.explained_variance.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
        assert!(pca.explained_variance.iter().all(|&v| v > -1e-9));
    }

    #[test]
    fn rotation_preserves_pairwise_l2() {
        let sample = anisotropic_sample(500, 12, 5);
        let pca = Pca::fit(&sample, usize::MAX);
        let a = sample.row(0);
        let b = sample.row(1);
        let (ra, rb) = (pca.rotate(a), pca.rotate(b));
        let d0: f32 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        let d1: f32 = ra.iter().zip(&rb).map(|(x, y)| (x - y) * (x - y)).sum();
        assert!((d0 - d1).abs() < d0.max(1.0) * 1e-3, "{d0} vs {d1}");
    }

    #[test]
    fn residual_variance_decreases() {
        let sample = anisotropic_sample(800, 10, 6);
        let pca = Pca::fit(&sample, usize::MAX);
        let total = pca.residual_variance(0);
        assert!(total > 0.0);
        let mut prev = total;
        for k in 1..=10 {
            let r = pca.residual_variance(k);
            assert!(r <= prev + 1e-9);
            prev = r;
        }
        assert_eq!(pca.residual_variance(10), 0.0);
    }

    #[test]
    fn rotate_rows_matches_rotate() {
        let sample = anisotropic_sample(64, 7, 8);
        let pca = Pca::fit(&sample, usize::MAX);
        let rotated = pca.rotate_rows(&sample, 4);
        for r in [0usize, 13, 63] {
            let want = pca.rotate(sample.row(r));
            for (g, w) in rotated.row(r).iter().zip(&want) {
                assert!((g - w).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn subsampled_fit_uses_requested_rows() {
        let sample = anisotropic_sample(1000, 4, 9);
        let full = Pca::fit(&sample, usize::MAX);
        let sub = Pca::fit(&sample, 250);
        // Same dominant axis up to sign, looser tolerance for the subsample.
        let dot: f32 = full
            .components
            .row(0)
            .iter()
            .zip(sub.components.row(0))
            .map(|(a, b)| a * b)
            .sum();
        assert!(dot.abs() > 0.9, "dominant axes disagree: dot = {dot}");
    }
}
