//! Random orthogonal matrices via Householder QR.
//!
//! ADSampling (Gao & Long, SIGMOD 2023) preprocesses the collection with a
//! random rotation so that any dimension prefix of a rotated vector is an
//! unbiased random sample of the vector's total energy. The standard
//! construction is the Q factor of a QR decomposition of an i.i.d.
//! Gaussian matrix, with the sign convention fixed so Q is Haar-distributed.

use crate::{Gaussian, Matrix};
use rand::Rng;

/// Draws a Haar-distributed random `n × n` orthogonal matrix.
///
/// Runs Householder QR in `f64` on an i.i.d. standard-normal matrix and
/// returns `Q` (rounded to `f32`), with each reflector's sign chosen from
/// the diagonal of `R` so the distribution is uniform over the orthogonal
/// group rather than biased by the QR sign convention.
pub fn random_orthogonal<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Matrix {
    let mut g = Gaussian::new();
    let a: Vec<f64> = (0..n * n).map(|_| g.sample(rng)).collect();
    let (q, r_diag_signs) = householder_q(a, n);
    // Scale column j of Q by sign(R[j][j]) to de-bias the decomposition.
    let mut out = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            out.set(i, j, (q[i * n + j] * r_diag_signs[j]) as f32);
        }
    }
    out
}

/// Householder QR of a square column-count `n` matrix (row-major, `f64`);
/// returns the dense `Q` and the signs of `diag(R)`.
fn householder_q(mut a: Vec<f64>, n: usize) -> (Vec<f64>, Vec<f64>) {
    // Accumulate the reflectors into Q = H_0 · H_1 · … · H_{n-2} applied
    // to the identity. v vectors are stored per step and applied to an
    // explicit Q at the end (backward accumulation keeps it O(n^3)).
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(n);
    let mut diag_signs = vec![1.0f64; n];
    for k in 0..n {
        // Compute the Householder vector for column k below the diagonal.
        let mut norm2 = 0.0;
        for i in k..n {
            let x = a[i * n + k];
            norm2 += x * x;
        }
        let norm = norm2.sqrt();
        let x0 = a[k * n + k];
        if norm == 0.0 {
            vs.push(Vec::new());
            diag_signs[k] = 1.0;
            continue;
        }
        let alpha = if x0 >= 0.0 { -norm } else { norm };
        let mut v = vec![0.0f64; n - k];
        v[0] = x0 - alpha;
        for i in k + 1..n {
            v[i - k] = a[i * n + k];
        }
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 == 0.0 {
            vs.push(Vec::new());
            diag_signs[k] = if alpha >= 0.0 { 1.0 } else { -1.0 };
            continue;
        }
        // Apply H = I - 2 v vᵀ / (vᵀv) to the trailing submatrix of A.
        for j in k..n {
            let mut dot = 0.0;
            for i in k..n {
                dot += v[i - k] * a[i * n + j];
            }
            let scale = 2.0 * dot / vnorm2;
            for i in k..n {
                a[i * n + j] -= scale * v[i - k];
            }
        }
        diag_signs[k] = if a[k * n + k] >= 0.0 { 1.0 } else { -1.0 };
        vs.push(v);
    }
    // Q starts as identity; apply reflectors in reverse order.
    let mut q = vec![0.0f64; n * n];
    for i in 0..n {
        q[i * n + i] = 1.0;
    }
    for k in (0..n).rev() {
        let v = &vs[k];
        if v.is_empty() {
            continue;
        }
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        for j in 0..n {
            let mut dot = 0.0;
            for i in k..n {
                dot += v[i - k] * q[i * n + j];
            }
            let scale = 2.0 * dot / vnorm2;
            for i in k..n {
                q[i * n + j] -= scale * v[i - k];
            }
        }
    }
    (q, diag_signs)
}

/// Applies the transform `out_row = m · in_row` to every row of a
/// collection stored row-major (`n_rows × dim`), multi-threaded.
///
/// This is the collection-rotation entry point used by ADSampling/BSA
/// preprocessing: `m` holds one output dimension per **row**, so the
/// product is exactly [`Matrix::mul_transposed`] with `m` as the
/// right-hand side.
pub fn transform_rows(rows: &Matrix, m: &Matrix, threads: usize) -> Matrix {
    rows.mul_transposed(m, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_orthogonal(q: &Matrix, tol: f32) {
        let n = q.rows();
        let qtq = q.transposed().mul_transposed(&q.transposed(), 1);
        for i in 0..n {
            for j in 0..n {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (qtq.get(i, j) - want).abs() < tol,
                    "QᵀQ[{i}][{j}] = {} (want {want})",
                    qtq.get(i, j)
                );
            }
        }
    }

    #[test]
    fn q_is_orthogonal_small() {
        let mut rng = StdRng::seed_from_u64(42);
        let q = random_orthogonal(8, &mut rng);
        assert_orthogonal(&q, 1e-4);
    }

    #[test]
    fn q_is_orthogonal_medium() {
        let mut rng = StdRng::seed_from_u64(9);
        let q = random_orthogonal(96, &mut rng);
        assert_orthogonal(&q, 1e-3);
    }

    #[test]
    fn rotation_preserves_norms_and_distances() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = 32;
        let q = random_orthogonal(d, &mut rng);
        let a: Vec<f32> = (0..d).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..d).map(|i| (i as f32 * 0.3).cos()).collect();
        let ra = q.matvec(&a);
        let rb = q.matvec(&b);
        let dist =
            |x: &[f32], y: &[f32]| -> f32 { x.iter().zip(y).map(|(p, q)| (p - q) * (p - q)).sum() };
        let norm = |x: &[f32]| -> f32 { x.iter().map(|v| v * v).sum() };
        assert!((norm(&a) - norm(&ra)).abs() < 1e-3);
        assert!((dist(&a, &b) - dist(&ra, &rb)).abs() < 1e-3);
    }

    #[test]
    fn different_seeds_give_different_rotations() {
        let q1 = random_orthogonal(8, &mut StdRng::seed_from_u64(1));
        let q2 = random_orthogonal(8, &mut StdRng::seed_from_u64(2));
        assert_ne!(q1.as_slice(), q2.as_slice());
    }

    #[test]
    fn transform_rows_matches_matvec() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = 16;
        let q = random_orthogonal(d, &mut rng);
        let rows = Matrix::from_vec(3, d, (0..3 * d).map(|i| (i as f32 * 0.1).sin()).collect());
        let out = transform_rows(&rows, &q, 2);
        for r in 0..3 {
            let want = q.matvec(rows.row(r));
            for (g, w) in out.row(r).iter().zip(&want) {
                assert!((g - w).abs() < 1e-4);
            }
        }
    }
}
