//! A minimal hand-rolled HTTP/1.1 exposition listener.
//!
//! Speaks just enough of the protocol for a Prometheus scraper or
//! `curl`: `GET /metrics` returns the caller-supplied render callback
//! output in text exposition format, `GET /healthz` returns `ok`.
//! Everything else is a polite 404/405/400 with `Connection: close`.
//!
//! Hardening over features: request lines are length-capped, reads
//! carry a timeout so a stalled client can't pin a handler thread,
//! and malformed or partial requests are answered (or dropped) and
//! closed without ever panicking.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The longest request head (request line + headers) we accept.
const MAX_HEAD_BYTES: usize = 8 * 1024;
/// How long a handler waits for a slow client before dropping it.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// Renders the `/metrics` body at scrape time.
pub type RenderFn = dyn Fn() -> String + Send + Sync;

/// The exposition listener; shuts down cleanly on [`MetricsServer::shutdown`]
/// or drop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl MetricsServer {
    /// Binds `127.0.0.1:port` (`port = 0` picks a free port) and
    /// starts answering scrapes with `render`'s output.
    pub fn start(port: u16, render: Arc<RenderFn>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("pdx-metrics".to_string())
                .spawn(move || accept_loop(listener, stop, render))?
        };
        Ok(Self {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (useful with `port = 0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, stop: Arc<AtomicBool>, render: Arc<RenderFn>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let render = Arc::clone(&render);
        // Handler threads are detached: each is bounded by the read
        // timeout and the response write, so they drain on their own.
        let _ = std::thread::Builder::new()
            .name("pdx-metrics-conn".to_string())
            .spawn(move || handle_conn(stream, render.as_ref()));
    }
}

/// Reads the request head (through the `\r\n\r\n` terminator), bounded
/// in both bytes and time. Returns `None` for connections that stall,
/// disconnect early, or overrun the cap.
fn read_head(stream: &mut TcpStream) -> Option<String> {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut head = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => n,
            Err(_) => return None,
        };
        head.extend_from_slice(&chunk[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if head.len() > MAX_HEAD_BYTES {
            return None;
        }
    }
    String::from_utf8(head).ok()
}

fn write_response(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

fn handle_conn(mut stream: TcpStream, render: &RenderFn) {
    let Some(head) = read_head(&mut stream) else {
        // Unparseable or stalled: close without a response.
        let _ = stream.shutdown(Shutdown::Both);
        return;
    };
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let (method, path, version) = (parts.next(), parts.next(), parts.next());
    match (method, path, version) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") => match (m, p) {
            ("GET", "/metrics") => write_response(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &render(),
            ),
            ("GET", "/healthz") => {
                write_response(&mut stream, "200 OK", "text/plain; charset=utf-8", "ok\n")
            }
            ("GET", _) => write_response(
                &mut stream,
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n",
            ),
            _ => write_response(
                &mut stream,
                "405 Method Not Allowed",
                "text/plain; charset=utf-8",
                "method not allowed\n",
            ),
        },
        _ => write_response(
            &mut stream,
            "400 Bad Request",
            "text/plain; charset=utf-8",
            "bad request\n",
        ),
    }
    let _ = stream.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(addr: SocketAddr, request: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = s.read_to_string(&mut out);
        out
    }

    #[test]
    fn serves_metrics_and_healthz() {
        let mut srv = MetricsServer::start(0, Arc::new(|| "a_total 1\n".to_string())).unwrap();
        let addr = srv.local_addr();
        let got = scrape(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(got.starts_with("HTTP/1.1 200 OK"), "{got}");
        assert!(got.contains("version=0.0.4"), "{got}");
        assert!(got.ends_with("a_total 1\n"), "{got}");
        let health = scrape(addr, "GET /healthz HTTP/1.1\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert!(health.ends_with("ok\n"), "{health}");
        let missing = scrape(addr, "GET /nope HTTP/1.1\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let post = scrape(addr, "POST /metrics HTTP/1.1\r\n\r\n");
        assert!(post.starts_with("HTTP/1.1 405"), "{post}");
        srv.shutdown();
    }

    #[test]
    fn content_length_matches_body() {
        let mut srv =
            MetricsServer::start(0, Arc::new(|| "x_total 7\ny_total 8\n".to_string())).unwrap();
        let got = scrape(srv.local_addr(), "GET /metrics HTTP/1.1\r\n\r\n");
        let mut lines = got.split("\r\n\r\n");
        let head = lines.next().unwrap();
        let body = lines.next().unwrap();
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(len, body.len());
        srv.shutdown();
    }

    #[test]
    fn malformed_requests_never_panic() {
        let mut srv = MetricsServer::start(0, Arc::new(String::new)).unwrap();
        let addr = srv.local_addr();
        // Garbage with a blank line: parsed, answered 400.
        let got = scrape(addr, "\x00\x01\x02 garbage\r\n\r\n");
        assert!(got.starts_with("HTTP/1.1 400"), "{got:?}");
        // Missing version.
        let got = scrape(addr, "GET /metrics\r\n\r\n");
        assert!(got.starts_with("HTTP/1.1 400"), "{got:?}");
        // Partial request then close: server just drops it.
        {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET /met").unwrap();
            drop(s);
        }
        // Oversized head: dropped without response.
        {
            let mut s = TcpStream::connect(addr).unwrap();
            let big = vec![b'a'; MAX_HEAD_BYTES + 1024];
            let _ = s.write_all(&big);
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut buf = Vec::new();
            let _ = s.read_to_end(&mut buf);
            assert!(buf.is_empty(), "expected drop, got {buf:?}");
        }
        // The server still answers after the abuse.
        let health = scrape(addr, "GET /healthz HTTP/1.1\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        srv.shutdown();
    }

    #[test]
    fn concurrent_scrapes_all_answer() {
        let mut srv = MetricsServer::start(0, Arc::new(|| "z_total 1\n".repeat(64))).unwrap();
        let addr = srv.local_addr();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        let got = scrape(addr, "GET /metrics HTTP/1.1\r\n\r\n");
                        assert!(got.starts_with("HTTP/1.1 200"), "{got}");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        srv.shutdown();
        // Shut down: new connections are refused or closed unanswered.
        let answered = TcpStream::connect(addr)
            .map(|mut s| {
                let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
                let mut out = String::new();
                let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
                let _ = s.read_to_string(&mut out);
                out
            })
            .unwrap_or_default();
        assert!(
            !answered.contains("200 OK"),
            "server answered after shutdown: {answered}"
        );
    }

    #[test]
    fn shutdown_is_idempotent() {
        let mut srv = MetricsServer::start(0, Arc::new(String::new)).unwrap();
        srv.shutdown();
        srv.shutdown();
    }
}
