//! std-only observability layer for the PDX stack (layer 0.5: below
//! `pdx-core`, no dependencies beyond std).
//!
//! Three pillars:
//!
//! 1. A process-global **metric registry** ([`Registry`]) of lock-free
//!    [`Counter`]s, [`Gauge`]s and log-scale [`Histogram`]s, registered
//!    by static name + label set and rendered in Prometheus text
//!    exposition format 0.0.4. Recording is a relaxed `fetch_add`;
//!    unread metrics cost one atomic per event.
//! 2. **Per-query tracing** ([`QueryTrace`]): phase timings plus the
//!    paper-native work counters (blocks visited, dimensions scanned
//!    vs pruned, rerank candidates, cache traffic). Traces are
//!    captured through a thread-local installed by
//!    [`trace::capture`] and fed to a sampling [`SlowQueryLog`] that
//!    emits one JSON line per sampled query.
//! 3. An **exposition surface** ([`MetricsServer`]): a minimal
//!    hand-rolled HTTP/1.1 listener answering `GET /metrics` and
//!    `GET /healthz`, designed to survive malformed and partial
//!    requests without panicking.
//!
//! The crate is intentionally free of any PDX domain types so every
//! layer above (core, store, serve, CLI) can depend on it.

pub mod expo;
pub mod hist;
pub mod http;
pub mod registry;
pub mod slowlog;
pub mod trace;

pub use hist::Histogram;
pub use http::MetricsServer;
pub use registry::{Counter, Gauge, Registry};
pub use slowlog::SlowQueryLog;
pub use trace::QueryTrace;
