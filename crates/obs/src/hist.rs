//! A lock-free fixed-bucket log-scale histogram.
//!
//! HDR-style: buckets are spaced so each power-of-two octave of the
//! value range is split into `2^SUB_BITS = 8` linear sub-buckets,
//! giving a worst-case relative error of `1/8 = 12.5 %` for any
//! recorded value — plenty for p50/p99/p999 at microsecond
//! resolution — in ~300 fixed `AtomicU64` cells, with recording being
//! two relaxed fetch-adds (no locks on the hot path).
//!
//! This generalizes the latency histogram that originally lived in
//! `pdx-serve`; the server re-exports it from here.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets.
const SUB_BITS: u32 = 3;
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Values at or above 2^34 (~4.7 hours when recording microseconds)
/// saturate into the last bucket.
const MAX_EXP: u32 = 34;
const BUCKETS: usize = (SUB_COUNT as usize) * ((MAX_EXP - SUB_BITS) as usize + 1);

/// A concurrent fixed-bucket log-scale histogram (≤ 12.5 % relative
/// bucket error, saturating at 2^34).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(BUCKETS);
        buckets.resize_with(BUCKETS, AtomicU64::default);
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn index_of(value: u64) -> usize {
        // Values below 2^SUB_BITS map linearly onto the first octave.
        if value < SUB_COUNT {
            return value as usize;
        }
        let exp = 63 - value.leading_zeros(); // floor(log2(value)) >= SUB_BITS
        let exp = exp.min(MAX_EXP - 1);
        let sub = (value >> (exp - SUB_BITS)) - SUB_COUNT; // top SUB_BITS bits after the leading 1
        let idx = ((exp - SUB_BITS + 1) as usize) * SUB_COUNT as usize + sub as usize;
        idx.min(BUCKETS - 1)
    }

    /// Upper bound of the bucket at `idx` (the value a quantile query
    /// reports for samples landing there).
    ///
    /// Inverse of [`Histogram::index_of`]: bucket `idx` covers values
    /// `[(8+sub) << shift, (9+sub) << shift - 1]` where
    /// `exp = idx/8 + 2`, `sub = idx % 8`, `shift = exp - SUB_BITS`.
    fn upper_bound(idx: usize) -> u64 {
        if idx < SUB_COUNT as usize {
            return idx as u64;
        }
        let exp = (idx / SUB_COUNT as usize) as u32 + SUB_BITS - 1;
        let sub = (idx % SUB_COUNT as usize) as u64;
        ((SUB_COUNT + sub + 1) << (exp - SUB_BITS)) - 1
    }

    /// Records one value (lock-free, relaxed ordering).
    pub fn record(&self, value: u64) {
        self.buckets[Self::index_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (wrapping at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The value at quantile `q` in `[0, 1]` (0 when empty), as the
    /// upper bound of the bucket holding the `ceil(q·count)`-th sample.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::upper_bound(idx);
            }
        }
        Self::upper_bound(BUCKETS - 1)
    }

    /// Cumulative per-octave buckets for Prometheus exposition:
    /// `(le, cumulative_count)` pairs where `le` is the inclusive
    /// upper bound of each octave, trimmed after the last non-empty
    /// octave (at least one finite bucket is always returned). The
    /// `+Inf` bucket is implied by [`Histogram::count`].
    pub fn cumulative_octaves(&self) -> Vec<(u64, u64)> {
        let chunk = SUB_COUNT as usize;
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        let mut last_nonzero = 0usize;
        for (j, octave) in self.buckets.chunks(chunk).enumerate() {
            let in_octave: u64 = octave.iter().map(|b| b.load(Ordering::Relaxed)).sum();
            cumulative += in_octave;
            out.push((Self::upper_bound((j + 1) * chunk - 1), cumulative));
            if in_octave > 0 {
                last_nonzero = j;
            }
        }
        out.truncate(last_nonzero + 1);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.999), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..SUB_COUNT {
            h.record(v);
        }
        // Every value below SUB_COUNT lands in its own bucket.
        assert_eq!(h.quantile(1.0 / SUB_COUNT as f64), 0);
        assert_eq!(h.quantile(1.0), SUB_COUNT - 1);
        assert_eq!(h.sum(), (0..SUB_COUNT).sum::<u64>());
    }

    #[test]
    fn relative_error_is_bounded() {
        for shift in 0..30u32 {
            let v = (1u64 << shift) + (1 << shift) / 3;
            let reported = Histogram::upper_bound(Histogram::index_of(v));
            let err = (reported as f64 - v as f64).abs() / v as f64;
            assert!(
                err <= 0.125 + 1e-9,
                "value {v}: reported {reported}, err {err}"
            );
            // The reported bound never undershoots the recorded value's bucket floor badly:
            assert!(
                reported as f64 >= v as f64 * 0.875,
                "value {v} -> {reported}"
            );
        }
    }

    #[test]
    fn quantiles_are_monotone() {
        let h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i);
        }
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        let p999 = h.quantile(0.999);
        assert!(p50 <= p99 && p99 <= p999, "{p50} {p99} {p999}");
        // p50 of 1..=10_000 is ~5000; bucket error is <= 12.5 %.
        assert!((4000..=6000).contains(&p50), "p50 = {p50}");
        assert!(p999 >= 9000, "p999 = {p999}");
    }

    #[test]
    fn huge_values_saturate() {
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert!(h.quantile(1.0) > 0);
    }

    #[test]
    fn octave_export_is_cumulative_and_trimmed() {
        let h = Histogram::new();
        h.record(3);
        h.record(100);
        h.record(100);
        let octs = h.cumulative_octaves();
        // Monotone `le`s and cumulative counts, last equals total count.
        for w in octs.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(octs.last().unwrap().1, h.count());
        // Trimmed: 100 < 128, so nothing beyond the [64, 127] octave.
        assert!(octs.last().unwrap().0 <= 127);
        // Every recorded value is covered by some bucket's bound.
        assert!(octs.iter().any(|&(le, _)| le >= 100));
    }
}
