//! Per-query tracing.
//!
//! A [`QueryTrace`] carries the paper-native accounting for one
//! search: where the time went (the Table 7 phase split) and how much
//! work the pruner saved (blocks and vectors visited, dimensions
//! scanned vs total, quantized rerank candidates, cache traffic).
//!
//! Traces flow bottom-up: the engine layer fills one in when tracing
//! is requested and hands it to [`record`], which merges it into the
//! thread-local slot installed by [`capture`]. A server worker wraps
//! each request in `capture` and feeds the result to the slow-query
//! log; when no capture is active, `record` is a thread-local check
//! and nothing more.

use std::cell::RefCell;

/// Phase timings and work counters for one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryTrace {
    /// End-to-end search time, nanoseconds.
    pub total_ns: u64,
    /// Query preprocessing (normalization, rotation, quantization).
    pub preprocess_ns: u64,
    /// Bucket selection / probe ordering.
    pub find_buckets_ns: u64,
    /// Pruning-bound evaluation.
    pub bounds_ns: u64,
    /// Distance kernel time.
    pub distance_ns: u64,
    /// Blocks visited by the scan.
    pub blocks_visited: u64,
    /// Vectors touched at least once.
    pub vectors_visited: u64,
    /// Dimension-values a full scan of the visited blocks would read.
    pub dims_total: u64,
    /// Dimension-values actually read before pruning cut in.
    pub dims_scanned: u64,
    /// Candidates reranked by the two-phase quantized path.
    pub rerank_candidates: u64,
    /// Block-cache hits charged to this query.
    pub cache_hits: u64,
    /// Block-cache misses charged to this query.
    pub cache_misses: u64,
    /// Deployment that served the query (e.g. `"ivf-pdx"`).
    pub deployment: &'static str,
    /// Kernel ISA the dispatcher resolved (e.g. `"avx2"`).
    pub kernel_isa: &'static str,
}

impl QueryTrace {
    /// Dimension-values the pruner skipped.
    pub fn dims_pruned(&self) -> u64 {
        self.dims_total.saturating_sub(self.dims_scanned)
    }

    /// Fraction of dimension-values pruned, in `[0, 1]` (0 when no
    /// work was recorded). This is the paper's pruning-power ratio.
    pub fn pruning_ratio(&self) -> f64 {
        if self.dims_total == 0 {
            0.0
        } else {
            self.dims_pruned() as f64 / self.dims_total as f64
        }
    }

    /// Accumulates another trace into this one (times and counters
    /// add; identity fields keep the first non-empty value).
    pub fn merge(&mut self, other: &QueryTrace) {
        self.total_ns += other.total_ns;
        self.preprocess_ns += other.preprocess_ns;
        self.find_buckets_ns += other.find_buckets_ns;
        self.bounds_ns += other.bounds_ns;
        self.distance_ns += other.distance_ns;
        self.blocks_visited += other.blocks_visited;
        self.vectors_visited += other.vectors_visited;
        self.dims_total += other.dims_total;
        self.dims_scanned += other.dims_scanned;
        self.rerank_candidates += other.rerank_candidates;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        if self.deployment.is_empty() {
            self.deployment = other.deployment;
        }
        if self.kernel_isa.is_empty() {
            self.kernel_isa = other.kernel_isa;
        }
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<QueryTrace>> = const { RefCell::new(None) };
}

/// Clears the slot even if the captured closure panics, so a poisoned
/// worker doesn't leak a stale trace into its next request.
struct SlotGuard;

impl Drop for SlotGuard {
    fn drop(&mut self) {
        ACTIVE.with(|a| *a.borrow_mut() = None);
    }
}

/// Runs `f` with a fresh thread-local trace slot installed and
/// returns its result together with everything [`record`]ed during
/// the call (from this thread).
///
/// Captures don't nest: an inner `capture` takes over the slot for
/// its duration, and its records are not visible to the outer one.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, QueryTrace) {
    let guard = SlotGuard;
    ACTIVE.with(|a| *a.borrow_mut() = Some(QueryTrace::default()));
    let out = f();
    let trace = ACTIVE.with(|a| a.borrow_mut().take()).unwrap_or_default();
    drop(guard);
    (out, trace)
}

/// True when a [`capture`] is active on this thread.
pub fn capturing() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// Merges `trace` into the active capture slot, if any. A no-op
/// (one thread-local check) outside a capture.
pub fn record(trace: &QueryTrace) {
    ACTIVE.with(|a| {
        if let Some(active) = a.borrow_mut().as_mut() {
            active.merge(trace);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_is_derived_and_bounded() {
        let t = QueryTrace {
            dims_total: 1000,
            dims_scanned: 250,
            ..QueryTrace::default()
        };
        assert_eq!(t.dims_pruned(), 750);
        assert!((t.pruning_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(QueryTrace::default().pruning_ratio(), 0.0);
    }

    #[test]
    fn capture_collects_records() {
        assert!(!capturing());
        let ((), trace) = capture(|| {
            assert!(capturing());
            record(&QueryTrace {
                total_ns: 10,
                blocks_visited: 2,
                deployment: "flat-pdx",
                ..QueryTrace::default()
            });
            record(&QueryTrace {
                total_ns: 5,
                blocks_visited: 1,
                deployment: "ivf-pdx",
                ..QueryTrace::default()
            });
        });
        assert_eq!(trace.total_ns, 15);
        assert_eq!(trace.blocks_visited, 3);
        // First non-empty identity wins.
        assert_eq!(trace.deployment, "flat-pdx");
        assert!(!capturing());
    }

    #[test]
    fn record_outside_capture_is_a_no_op() {
        record(&QueryTrace {
            total_ns: 1,
            ..QueryTrace::default()
        });
        let ((), trace) = capture(|| {});
        assert_eq!(trace, QueryTrace::default());
    }

    #[test]
    fn capture_slot_clears_after_panic() {
        let caught = std::panic::catch_unwind(|| {
            let _ = capture(|| panic!("boom"));
        });
        assert!(caught.is_err());
        assert!(!capturing());
    }
}
