//! The process-global metric registry.
//!
//! Metrics are registered by static name + label set and handed back
//! as `Arc` handles; recording through a handle is a single relaxed
//! atomic op, so instrumented code pays near-nothing when nobody
//! scrapes. Registration takes a short mutex — callers are expected
//! to register once (at startup or through a `OnceLock`) and record
//! through the cached handle.
//!
//! The registry is process-global by design: two servers or caches in
//! one process share families, and their counters merge. Tests that
//! need isolation can construct a private [`Registry`].

use crate::expo;
use crate::hist::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter (relaxed atomics).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero (detached from any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value (relaxed atomics).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge at zero (detached from any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero.
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Family {
    help: &'static str,
    kind: &'static str,
    /// Label-set → handle; labels are stored key-sorted so the same
    /// set registered in any order resolves to the same metric.
    samples: Vec<(Vec<(String, String)>, Metric)>,
}

/// A collection of metric families, rendered together.
///
/// Use [`Registry::global`] for the process-wide instance every
/// subsystem reports into; private instances exist for tests.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

fn canonical_labels(labels: &[(&'static str, &str)]) -> Vec<(String, String)> {
    let mut owned: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| {
            assert!(expo::valid_label_name(k), "invalid label name {k:?}");
            assert!(*k != "le", "the label name 'le' is reserved for histograms");
            (k.to_string(), v.to_string())
        })
        .collect();
    owned.sort();
    owned
}

impl Registry {
    /// Creates an empty, private registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-global registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn get_or_register(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        assert!(
            expo::valid_metric_name(name),
            "invalid metric name {name:?}"
        );
        let labels = canonical_labels(labels);
        let mut families = self.families.lock().unwrap();
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            kind: "",
            samples: Vec::new(),
        });
        if let Some((_, metric)) = family.samples.iter().find(|(l, _)| *l == labels) {
            return metric.clone();
        }
        let metric = make();
        assert!(
            family.kind.is_empty() || family.kind == metric.kind(),
            "metric {name:?} registered as both {} and {}",
            family.kind,
            metric.kind()
        );
        family.kind = metric.kind();
        family.samples.push((labels, metric.clone()));
        metric
    }

    /// Gets or registers a counter under `name` with the given label
    /// set. Panics if `name` is already registered with another kind.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Counter> {
        match self.get_or_register(name, help, labels, || {
            Metric::Counter(Arc::new(Counter::new()))
        }) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Gets or registers a gauge under `name` with the given label set.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Gauge> {
        match self.get_or_register(name, help, labels, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Gets or registers a histogram under `name` with the given label
    /// set.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Histogram> {
        match self.get_or_register(name, help, labels, || {
            Metric::Histogram(Arc::new(Histogram::new()))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Renders every registered family in Prometheus text exposition
    /// format 0.0.4, families in name order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let families = self.families.lock().unwrap();
        for (name, family) in families.iter() {
            expo::push_header(&mut out, name, family.help, family.kind);
            for (labels, metric) in &family.samples {
                match metric {
                    Metric::Counter(c) => expo::push_sample(&mut out, name, labels, c.get()),
                    Metric::Gauge(g) => expo::push_sample(&mut out, name, labels, g.get()),
                    Metric::Histogram(h) => expo::push_histogram(&mut out, name, labels, h),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn same_name_and_labels_share_a_handle() {
        let r = Registry::new();
        let a = r.counter("t_total", "help", &[("shard", "0")]);
        let b = r.counter("t_total", "help", &[("shard", "0")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        // Label order doesn't matter for identity.
        let c = r.counter("t2_total", "h", &[("a", "1"), ("b", "2")]);
        let d = r.counter("t2_total", "h", &[("b", "2"), ("a", "1")]);
        c.inc();
        assert_eq!(d.get(), 1);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        let _ = r.counter("conflict_total", "h", &[]);
        let _ = r.gauge("conflict_total", "h", &[]);
    }

    #[test]
    fn gauge_sub_saturates() {
        let g = Gauge::new();
        g.set(2);
        g.sub(5);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn concurrent_increments_all_land() {
        let r = Registry::new();
        let c = r.counter("contended_total", "h", &[]);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn render_contains_every_family() {
        let r = Registry::new();
        r.counter("a_total", "counts a", &[]).inc();
        r.gauge("b_bytes", "sizes b", &[("kind", "x")]).set(7);
        r.histogram("c_us", "times c", &[]).record(12);
        let text = r.render();
        assert!(text.contains("# TYPE a_total counter"), "{text}");
        assert!(text.contains("a_total 1"), "{text}");
        assert!(text.contains("b_bytes{kind=\"x\"} 7"), "{text}");
        assert!(text.contains("# TYPE c_us histogram"), "{text}");
        assert!(text.contains("c_us_count 1"), "{text}");
    }
}
