//! Prometheus text exposition format (version 0.0.4) rendering
//! helpers.
//!
//! Shared between [`crate::Registry::render`] and callers that expose
//! ad-hoc families computed at scrape time (derived ratios, snapshot
//! gauges read from non-registry sources).

use crate::hist::Histogram;
use std::fmt::Write;

/// Returns true when `name` is a valid Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Returns true when `name` is a valid Prometheus label name
/// (`[a-zA-Z_][a-zA-Z0-9_]*`).
pub fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Escapes a HELP line: backslash and newline.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslash, double-quote and newline.
fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders a `{k="v",...}` block (empty string for no labels).
pub fn label_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

/// Merges the family label set with an extra `le` label for histogram
/// bucket lines.
fn label_block_with_le(labels: &[(String, String)], le: &str) -> String {
    let mut all: Vec<(String, String)> = labels.to_vec();
    all.push(("le".to_string(), le.to_string()));
    label_block(&all)
}

/// Appends the `# HELP` / `# TYPE` header for a family.
pub fn push_header(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Appends one `name{labels} value` sample line with an integer value.
pub fn push_sample(out: &mut String, name: &str, labels: &[(String, String)], value: u64) {
    let _ = writeln!(out, "{name}{} {value}", label_block(labels));
}

/// Appends a complete single-sample gauge family with a float value
/// (used for derived ratios computed at scrape time).
pub fn push_gauge_f64(
    out: &mut String,
    name: &str,
    help: &str,
    labels: &[(String, String)],
    value: f64,
) {
    push_header(out, name, help, "gauge");
    let _ = writeln!(out, "{name}{} {value}", label_block(labels));
}

/// Appends a complete histogram family in cumulative `_bucket` /
/// `_sum` / `_count` form. Octaves past the last non-empty one are
/// trimmed; the `+Inf` bucket always carries the total count.
pub fn push_histogram(out: &mut String, name: &str, labels: &[(String, String)], h: &Histogram) {
    for (le, cumulative) in h.cumulative_octaves() {
        let _ = writeln!(
            out,
            "{name}_bucket{} {cumulative}",
            label_block_with_le(labels, &le.to_string())
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{} {}",
        label_block_with_le(labels, "+Inf"),
        h.count()
    );
    push_sample(out, &format!("{name}_sum"), labels, h.sum());
    push_sample(out, &format!("{name}_count"), labels, h.count());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_validation() {
        assert!(valid_metric_name("pdx_cache_hits_total"));
        assert!(valid_metric_name("_x:y"));
        assert!(!valid_metric_name(""));
        assert!(!valid_metric_name("9lives"));
        assert!(!valid_metric_name("has space"));
        assert!(valid_label_name("deployment"));
        assert!(!valid_label_name("le:gs"));
    }

    #[test]
    fn label_values_are_escaped() {
        let labels = vec![("path".to_string(), "a\"b\\c\nd".to_string())];
        let block = label_block(&labels);
        assert_eq!(block, "{path=\"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn histogram_lines_have_inf_and_count() {
        let h = Histogram::new();
        h.record(5);
        h.record(500);
        let mut out = String::new();
        push_histogram(&mut out, "t_us", &[], &h);
        assert!(out.contains("t_us_bucket{le=\"+Inf\"} 2"), "{out}");
        assert!(out.contains("t_us_sum 505"), "{out}");
        assert!(out.contains("t_us_count 2"), "{out}");
    }
}
