//! The sampling slow-query log.
//!
//! Every observed query is tested against two independent gates: a
//! latency threshold (every query at or above it is logged) and a
//! 1-in-N sampler (a steady trickle of normal queries for baseline
//! comparison). Sampled lines are emitted as single-line JSON so they
//! can be grepped and post-processed without a parser library.

use crate::trace::QueryTrace;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Escapes a string for inclusion in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A latency-thresholded, 1-in-N-sampled JSON-lines query log.
pub struct SlowQueryLog {
    threshold_us: u64,
    sample_every: u64,
    seen: AtomicU64,
    logged: AtomicU64,
    sink: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for SlowQueryLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowQueryLog")
            .field("threshold_us", &self.threshold_us)
            .field("sample_every", &self.sample_every)
            .field("seen", &self.seen)
            .field("logged", &self.logged)
            .finish_non_exhaustive()
    }
}

impl SlowQueryLog {
    /// Creates a log writing to stderr. `threshold_us = 0` disables
    /// the latency gate; `sample_every = 0` disables sampling (only
    /// slow queries are logged).
    pub fn new(threshold_us: u64, sample_every: u64) -> Self {
        Self::with_sink(threshold_us, sample_every, Box::new(io::stderr()))
    }

    /// Creates a log writing to an arbitrary sink (tests, files).
    pub fn with_sink(threshold_us: u64, sample_every: u64, sink: Box<dyn Write + Send>) -> Self {
        Self {
            threshold_us,
            sample_every,
            seen: AtomicU64::new(0),
            logged: AtomicU64::new(0),
            sink: Mutex::new(sink),
        }
    }

    /// Queries observed so far.
    pub fn seen(&self) -> u64 {
        self.seen.load(Ordering::Relaxed)
    }

    /// Lines emitted so far.
    pub fn logged(&self) -> u64 {
        self.logged.load(Ordering::Relaxed)
    }

    /// Observes one completed query; returns whether a line was
    /// emitted. `extra` appends caller context (op kind, k, shard) as
    /// additional JSON string fields.
    pub fn observe(&self, trace: &QueryTrace, extra: &[(&str, String)]) -> bool {
        let n = self.seen.fetch_add(1, Ordering::Relaxed);
        let total_us = trace.total_ns / 1_000;
        let slow = self.threshold_us > 0 && total_us >= self.threshold_us;
        let sampled = self.sample_every > 0 && n % self.sample_every == 0;
        if !slow && !sampled {
            return false;
        }
        let mut line = String::with_capacity(256);
        line.push('{');
        line.push_str(&format!("\"slow\":{slow}"));
        line.push_str(&format!(",\"total_us\":{total_us}"));
        line.push_str(&format!(",\"preprocess_ns\":{}", trace.preprocess_ns));
        line.push_str(&format!(",\"find_buckets_ns\":{}", trace.find_buckets_ns));
        line.push_str(&format!(",\"bounds_ns\":{}", trace.bounds_ns));
        line.push_str(&format!(",\"distance_ns\":{}", trace.distance_ns));
        line.push_str(&format!(",\"blocks_visited\":{}", trace.blocks_visited));
        line.push_str(&format!(",\"vectors_visited\":{}", trace.vectors_visited));
        line.push_str(&format!(",\"dims_total\":{}", trace.dims_total));
        line.push_str(&format!(",\"dims_scanned\":{}", trace.dims_scanned));
        line.push_str(&format!(",\"pruning_ratio\":{:.4}", trace.pruning_ratio()));
        line.push_str(&format!(
            ",\"rerank_candidates\":{}",
            trace.rerank_candidates
        ));
        line.push_str(&format!(",\"cache_hits\":{}", trace.cache_hits));
        line.push_str(&format!(",\"cache_misses\":{}", trace.cache_misses));
        line.push_str(&format!(
            ",\"deployment\":\"{}\"",
            escape_json(trace.deployment)
        ));
        line.push_str(&format!(
            ",\"kernel\":\"{}\"",
            escape_json(trace.kernel_isa)
        ));
        for (k, v) in extra {
            line.push_str(&format!(",\"{}\":\"{}\"", escape_json(k), escape_json(v)));
        }
        line.push_str("}\n");
        let mut sink = self.sink.lock().unwrap();
        // A broken sink must never take the query path down with it.
        let _ = sink.write_all(line.as_bytes());
        let _ = sink.flush();
        self.logged.fetch_add(1, Ordering::Relaxed);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn trace_us(us: u64) -> QueryTrace {
        QueryTrace {
            total_ns: us * 1_000,
            deployment: "flat-pdx",
            kernel_isa: "scalar",
            ..QueryTrace::default()
        }
    }

    #[test]
    fn slow_queries_always_log() {
        let buf = SharedBuf::default();
        let log = SlowQueryLog::with_sink(1_000, 0, Box::new(buf.clone()));
        assert!(!log.observe(&trace_us(999), &[]));
        assert!(log.observe(&trace_us(1_000), &[]));
        assert_eq!(log.logged(), 1);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"slow\":true"), "{text}");
        assert!(text.contains("\"deployment\":\"flat-pdx\""), "{text}");
    }

    #[test]
    fn sampler_logs_one_in_n() {
        let buf = SharedBuf::default();
        let log = SlowQueryLog::with_sink(0, 4, Box::new(buf.clone()));
        let logged = (0..12).filter(|_| log.observe(&trace_us(1), &[])).count();
        assert_eq!(logged, 3);
        assert_eq!(log.seen(), 12);
    }

    #[test]
    fn extra_fields_are_escaped() {
        let buf = SharedBuf::default();
        let log = SlowQueryLog::with_sink(1, 0, Box::new(buf.clone()));
        log.observe(&trace_us(5), &[("op", "he said \"hi\"\n".to_string())]);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("\"op\":\"he said \\\"hi\\\"\\n\""), "{text}");
        // Still a single line despite the embedded newline.
        assert_eq!(text.lines().count(), 1);
    }
}
