//! The versioned `PDX3` manifest: the commit point of a persistent
//! collection.
//!
//! The manifest is the single source of truth for what a collection
//! directory contains: the store configuration, the sealed segments (by
//! sequence number — file names derive from it), the tombstone set of
//! sealed rows, and the current WAL generation. It is replaced
//! **atomically** (write `MANIFEST.tmp`, fsync, rename), so a reader
//! always sees either the old state or the new state, never a mix; a
//! segment file only becomes reachable once the manifest naming it has
//! been renamed into place.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "PDX3" | version u32
//! dims u32 | block_size u32 | group u32 | buffer_cap u32 | quantize u32
//! wal_seq u64 | next_segment_seq u64
//! n_segments u32 | seq u64 × n_segments
//! n_tombstones u64 | id u64 × n_tombstones
//! ```

use crate::{StoreConfig, StoreError};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// The magic number identifying a mutable-collection manifest; what
/// `AnyIndex::open` sniffs to serve a collection directory.
pub const MANIFEST_MAGIC: &[u8; 4] = b"PDX3";
/// The manifest's file name inside a collection directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
const VERSION: u32 = 1;

/// The decoded manifest of a collection directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Dimensionality of the collection.
    pub dims: usize,
    /// The store configuration fixed at creation.
    pub config: StoreConfig,
    /// Current WAL generation: buffered state lives in `wal-<seq>.log`.
    pub wal_seq: u64,
    /// Sequence number the next sealed segment will take.
    pub next_segment_seq: u64,
    /// Sealed segments in storage order, by sequence number.
    pub segments: Vec<u64>,
    /// External ids deleted from sealed segments but not yet compacted
    /// away.
    pub tombstones: Vec<u64>,
}

/// File name of a WAL generation.
pub fn wal_file(seq: u64) -> String {
    format!("wal-{seq:06}.log")
}

/// File name of a sealed segment's container.
pub fn segment_file(seq: u64) -> String {
    format!("seg-{seq:06}.pdx")
}

/// File name of a sealed segment's external-id remap table.
pub fn segment_ids_file(seq: u64) -> String {
    format!("seg-{seq:06}.ids")
}

impl Manifest {
    /// The manifest path inside `dir`.
    pub fn path(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_FILE)
    }

    /// Serializes the manifest.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.segments.len() * 8 + self.tombstones.len() * 8);
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        for v in [
            self.dims,
            self.config.block_size,
            self.config.group_size,
            self.config.buffer_capacity,
            usize::from(self.config.quantize),
        ] {
            out.extend_from_slice(&(v as u32).to_le_bytes());
        }
        out.extend_from_slice(&self.wal_seq.to_le_bytes());
        out.extend_from_slice(&self.next_segment_seq.to_le_bytes());
        out.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        for seq in &self.segments {
            out.extend_from_slice(&seq.to_le_bytes());
        }
        out.extend_from_slice(&(self.tombstones.len() as u64).to_le_bytes());
        for id in &self.tombstones {
            out.extend_from_slice(&id.to_le_bytes());
        }
        out
    }

    /// Atomically replaces the manifest in `dir`: the new bytes land in
    /// `MANIFEST.tmp`, are fsynced, and take effect with a rename.
    ///
    /// # Errors
    /// Propagates IO errors.
    pub fn write_atomic(&self, dir: &Path) -> io::Result<()> {
        let tmp = dir.join("MANIFEST.tmp");
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&self.encode())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, Self::path(dir))?;
        // Make the rename itself durable where the platform allows it.
        if let Ok(d) = std::fs::File::open(dir) {
            d.sync_all().ok();
        }
        Ok(())
    }

    /// Reads and validates the manifest of `dir`.
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] on bad magic/version or truncation; IO
    /// errors (including a missing manifest) are propagated.
    pub fn read(dir: &Path) -> Result<Self, StoreError> {
        let path = Self::path(dir);
        let mut r = io::BufReader::new(std::fs::File::open(&path)?);
        let corrupt = |msg: &str| StoreError::Corrupt(format!("{}: {msg}", path.display()));
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)
            .map_err(|_| corrupt("truncated manifest"))?;
        if &magic != MANIFEST_MAGIC {
            return Err(corrupt("not a PDX3 manifest"));
        }
        let mut u32_buf = [0u8; 4];
        let mut u64_buf = [0u8; 8];
        let mut read_u32 = |r: &mut dyn Read| -> Result<u32, StoreError> {
            r.read_exact(&mut u32_buf)
                .map_err(|_| StoreError::Corrupt("truncated manifest".into()))?;
            Ok(u32::from_le_bytes(u32_buf))
        };
        let mut read_u64 = |r: &mut dyn Read| -> Result<u64, StoreError> {
            r.read_exact(&mut u64_buf)
                .map_err(|_| StoreError::Corrupt("truncated manifest".into()))?;
            Ok(u64::from_le_bytes(u64_buf))
        };
        let version = read_u32(&mut r)?;
        if version != VERSION {
            return Err(corrupt(&format!("unsupported manifest version {version}")));
        }
        let dims = read_u32(&mut r)? as usize;
        let block_size = read_u32(&mut r)? as usize;
        let group_size = read_u32(&mut r)? as usize;
        let buffer_capacity = read_u32(&mut r)? as usize;
        let quantize = read_u32(&mut r)? != 0;
        if dims == 0 || block_size == 0 || group_size == 0 || buffer_capacity == 0 {
            return Err(corrupt("zero dims/block/group/buffer in manifest"));
        }
        let wal_seq = read_u64(&mut r)?;
        let next_segment_seq = read_u64(&mut r)?;
        // The counts below are untrusted on-disk values: bound every
        // pre-allocation and cross-check against the file size before
        // looping, so a corrupt manifest yields `Corrupt`, never an
        // OOM abort. Fixed prefix: magic + version + 5×u32 config +
        // wal_seq + next_segment_seq + segment count = 48 bytes.
        let file_len = std::fs::metadata(&path)?.len();
        let fixed: u64 = 48 + 8; // prefix + tombstone-count field
        let n_segments = read_u32(&mut r)? as usize;
        let seg_bytes = (n_segments as u64).saturating_mul(8);
        if fixed.saturating_add(seg_bytes) > file_len {
            return Err(corrupt(&format!(
                "segment count {n_segments} exceeds manifest size {file_len}"
            )));
        }
        let mut segments = Vec::with_capacity(n_segments.min(1 << 20));
        for _ in 0..n_segments {
            segments.push(read_u64(&mut r)?);
        }
        let n_tombstones = read_u64(&mut r)?;
        let n_tombstones =
            usize::try_from(n_tombstones).map_err(|_| corrupt("tombstone count overflows"))?;
        let tomb_bytes = (n_tombstones as u64).saturating_mul(8);
        if fixed.saturating_add(seg_bytes).saturating_add(tomb_bytes) != file_len {
            return Err(corrupt(&format!(
                "tombstone count {n_tombstones} disagrees with manifest size {file_len}"
            )));
        }
        let mut tombstones = Vec::with_capacity(n_tombstones.min(1 << 20));
        for _ in 0..n_tombstones {
            tombstones.push(read_u64(&mut r)?);
        }
        Ok(Self {
            dims,
            config: StoreConfig {
                block_size,
                group_size,
                buffer_capacity,
                quantize,
            },
            wal_seq,
            next_segment_seq,
            segments,
            tombstones,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            dims: 16,
            config: StoreConfig {
                block_size: 256,
                group_size: 32,
                buffer_capacity: 1024,
                quantize: true,
            },
            wal_seq: 7,
            next_segment_seq: 4,
            segments: vec![1, 3],
            tombstones: vec![10, 20, 30],
        }
    }

    #[test]
    fn atomic_round_trip() {
        let dir = std::env::temp_dir().join("pdx_store_manifest_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let m = sample();
        m.write_atomic(&dir).unwrap();
        assert_eq!(Manifest::read(&dir).unwrap(), m);
        // A rewrite replaces it atomically (no .tmp left behind).
        let mut m2 = m.clone();
        m2.wal_seq = 8;
        m2.write_atomic(&dir).unwrap();
        assert_eq!(Manifest::read(&dir).unwrap(), m2);
        assert!(!dir.join("MANIFEST.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_and_truncation_are_corrupt() {
        let dir = std::env::temp_dir().join("pdx_store_manifest_bad");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(Manifest::path(&dir), b"NOPE").unwrap();
        assert!(matches!(Manifest::read(&dir), Err(StoreError::Corrupt(_))));
        let m = sample();
        m.write_atomic(&dir).unwrap();
        let bytes = std::fs::read(Manifest::path(&dir)).unwrap();
        std::fs::write(Manifest::path(&dir), &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(Manifest::read(&dir), Err(StoreError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }
}
