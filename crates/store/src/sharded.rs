//! Sharded collections: N independent [`Collection`] shards behind one
//! directory, for corpora whose write path or resident set outgrows a
//! single collection.
//!
//! A sharded collection is a parent directory holding a tiny `SHARDS`
//! manifest (magic `PDX4`) and `shard-000` … `shard-NNN` subdirectories,
//! each a complete, independently recoverable [`Collection`] (own
//! manifest, WAL, segments). External ids route to shards by a fixed
//! FNV-1a hash, so the mapping is stable across restarts and
//! independent of insertion order.
//!
//! Reads are merged, not partitioned: a query runs against every shard
//! and the per-shard top-k lists merge canonically by `(distance, id)`
//! — the same merge the intra-query parallel paths use — so
//! [`ShardedCollection::search`] and
//! [`ShardedCollection::search_parallel`] return bit-identical results
//! at any thread count, and (under the row-pure `Sequential` visit
//! order) bit-identical to an equivalent single-shard build holding
//! the same rows.

use crate::{Collection, StoreConfig, StoreError};
use pdx_core::engine::{SearchOptions, VectorIndex};
use pdx_core::exec::{merge_neighbors, parallel_block_search, ThreadPool};
use pdx_core::heap::Neighbor;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// File name of the sharding manifest inside the parent directory.
pub const SHARDS_FILE: &str = "SHARDS";

/// Magic number of the sharding manifest.
pub const SHARDS_MAGIC: &[u8; 4] = b"PDX4";

const SHARDS_VERSION: u32 = 1;

/// A fixed id → shard hash (FNV-1a over the id's little-endian bytes).
/// Stable across platforms and releases: the manifest stores only the
/// shard count, so the routing function must never change.
fn shard_of_id(id: u64, n_shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % n_shards as u64) as usize
}

/// N independent collection shards behind one directory and one
/// [`VectorIndex`] surface.
#[derive(Debug)]
pub struct ShardedCollection {
    dir: PathBuf,
    dims: usize,
    shards: Vec<Collection>,
}

impl ShardedCollection {
    fn shard_dir(dir: &Path, i: usize) -> PathBuf {
        dir.join(format!("shard-{i:03}"))
    }

    /// Whether `dir` holds a sharded collection (has a `SHARDS`
    /// manifest). The cheap sniff `AnyIndex`-style open paths use to
    /// route a directory here instead of [`Collection::open`].
    pub fn is_sharded_dir(dir: impl AsRef<Path>) -> bool {
        dir.as_ref().join(SHARDS_FILE).is_file()
    }

    /// Creates a sharded collection of `n_shards` shards, each an empty
    /// [`Collection`] with the given config.
    ///
    /// # Errors
    /// Fails if the directory already holds a sharding manifest, if
    /// `n_shards` is zero, or on any underlying store/IO error.
    pub fn create(
        dir: impl AsRef<Path>,
        dims: usize,
        n_shards: usize,
        config: StoreConfig,
    ) -> Result<Self, StoreError> {
        let dir = dir.as_ref();
        if n_shards == 0 {
            return Err(StoreError::Corrupt(
                "a sharded collection needs at least one shard".into(),
            ));
        }
        std::fs::create_dir_all(dir)?;
        let manifest = dir.join(SHARDS_FILE);
        if manifest.exists() {
            return Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!("{}: sharded collection already exists", dir.display()),
            )));
        }
        let mut shards = Vec::with_capacity(n_shards);
        for i in 0..n_shards {
            shards.push(Collection::create(Self::shard_dir(dir, i), dims, config)?);
        }
        // Written last and atomically: a crash mid-create leaves shard
        // directories but no manifest, and `create` can be retried
        // only after cleanup — `open` never sees a half-built parent.
        let tmp = dir.join(format!("{SHARDS_FILE}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(SHARDS_MAGIC)?;
            f.write_all(&SHARDS_VERSION.to_le_bytes())?;
            f.write_all(&(n_shards as u32).to_le_bytes())?;
            f.write_all(&(dims as u32).to_le_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &manifest)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            dims,
            shards,
        })
    }

    /// Opens a sharded collection: reads the `SHARDS` manifest and
    /// opens every shard (each with its own WAL replay and recovery).
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] if the manifest is malformed or a shard
    /// disagrees with it; shard-level errors are propagated.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref();
        let mut f = std::fs::File::open(dir.join(SHARDS_FILE))?;
        let mut header = [0u8; 16];
        f.read_exact(&mut header)
            .map_err(|_| StoreError::Corrupt("truncated SHARDS manifest".into()))?;
        if &header[0..4] != SHARDS_MAGIC {
            return Err(StoreError::Corrupt(format!(
                "bad SHARDS magic {:?}",
                &header[0..4]
            )));
        }
        let word = |at: usize| u32::from_le_bytes(header[at..at + 4].try_into().expect("4 bytes"));
        let version = word(4);
        if version != SHARDS_VERSION {
            return Err(StoreError::Corrupt(format!(
                "unsupported SHARDS version {version}"
            )));
        }
        let n_shards = word(8) as usize;
        let dims = word(12) as usize;
        if n_shards == 0 || dims == 0 {
            return Err(StoreError::Corrupt(
                "SHARDS manifest with zero shards or dims".into(),
            ));
        }
        let mut shards = Vec::with_capacity(n_shards);
        for i in 0..n_shards {
            let shard = Collection::open(Self::shard_dir(dir, i))?;
            if shard.dims() != dims {
                return Err(StoreError::Corrupt(format!(
                    "shard {i} has {} dims, manifest says {dims}",
                    shard.dims()
                )));
            }
            shards.push(shard);
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            dims,
            shards,
        })
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The parent directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shards, in routing order.
    pub fn shards(&self) -> &[Collection] {
        &self.shards
    }

    /// Which shard owns `id`.
    pub fn shard_of(&self, id: u64) -> usize {
        shard_of_id(id, self.shards.len())
    }

    /// Live vectors across all shards.
    pub fn live_len(&self) -> usize {
        self.shards.iter().map(Collection::live_len).sum()
    }

    /// Inserts a vector under an external id (routed by id hash).
    ///
    /// # Errors
    /// Same contract as [`Collection::insert`].
    pub fn insert(&self, id: u64, vector: &[f32]) -> Result<(), StoreError> {
        self.shards[self.shard_of(id)].insert(id, vector)
    }

    /// Deletes an external id (routed by id hash).
    ///
    /// # Errors
    /// Same contract as [`Collection::delete`].
    pub fn delete(&self, id: u64) -> Result<(), StoreError> {
        self.shards[self.shard_of(id)].delete(id)
    }

    /// Whether any shard holds `id` live.
    pub fn contains(&self, id: u64) -> bool {
        self.shards[self.shard_of(id)].contains(id)
    }

    /// Durably syncs every shard's WAL.
    ///
    /// # Errors
    /// Propagates the first shard failure.
    pub fn sync(&self) -> Result<(), StoreError> {
        self.shards.iter().try_for_each(Collection::sync)
    }

    /// Seals every shard's write buffer into immutable segments.
    ///
    /// # Errors
    /// Propagates the first shard failure.
    pub fn seal(&self) -> Result<(), StoreError> {
        self.shards.iter().try_for_each(Collection::seal)
    }

    /// Compacts every shard (purging tombstones, merging segments).
    ///
    /// # Errors
    /// Propagates the first shard failure.
    pub fn compact(&self) -> Result<(), StoreError> {
        self.shards.iter().try_for_each(Collection::compact)
    }
}

impl VectorIndex for ShardedCollection {
    fn dims(&self) -> usize {
        self.dims
    }

    fn len(&self) -> usize {
        self.live_len()
    }

    fn kind(&self) -> &'static str {
        "sharded-collection"
    }

    /// Searches every shard sequentially and merges the per-shard
    /// top-k lists canonically by `(distance, id)`.
    fn search(&self, query: &[f32], opts: &SearchOptions) -> Vec<Neighbor> {
        let lists: Vec<Vec<Neighbor>> = self
            .shards
            .iter()
            .map(|s| VectorIndex::search(s, query, opts))
            .collect();
        merge_neighbors(&lists, opts.k)
    }

    /// One shard per work item on the intra-query pool. Each worker
    /// runs the *sequential* per-shard search, and the pool's merge is
    /// the same canonical `(distance, id)` merge as
    /// [`VectorIndex::search`] — so results are bit-identical to the
    /// sequential path at any thread count.
    fn search_parallel(&self, query: &[f32], opts: &SearchOptions) -> Vec<Neighbor> {
        let pool = ThreadPool::new(opts.threads);
        parallel_block_search(&pool, self.shards.len(), opts.k, |range| {
            let lists: Vec<Vec<Neighbor>> = self.shards[range]
                .iter()
                .map(|s| VectorIndex::search(s, query, opts))
                .collect();
            merge_neighbors(&lists, opts.k)
        })
    }

    fn resident_bytes(&self) -> u64 {
        self.shards.iter().map(VectorIndex::resident_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdx_core::engine::PrunerKind;
    use pdx_core::visit_order::VisitOrder;

    fn small_config() -> StoreConfig {
        StoreConfig {
            block_size: 16,
            group_size: 8,
            buffer_capacity: 32,
            quantize: false,
        }
    }

    fn rows(n: usize, d: usize) -> Vec<f32> {
        (0..n * d).map(|i| (i as f32 * 0.37).sin() * 5.0).collect()
    }

    #[test]
    fn routing_is_total_and_stable() {
        assert!((0..1000u64).all(|id| shard_of_id(id, 4) < 4));
        // Pin a few values: the routing function must never change.
        assert_eq!(shard_of_id(0, 4), shard_of_id(0, 4));
        let spread: std::collections::HashSet<usize> =
            (0..100u64).map(|id| shard_of_id(id, 4)).collect();
        assert_eq!(spread.len(), 4, "hash must reach every shard");
    }

    #[test]
    fn create_insert_reopen_round_trip() {
        let dir = std::env::temp_dir().join("pdx_sharded_round_trip");
        std::fs::remove_dir_all(&dir).ok();
        let (n, d) = (150, 6);
        let data = rows(n, d);
        let sharded = ShardedCollection::create(&dir, d, 3, small_config()).unwrap();
        for i in 0..n {
            sharded.insert(i as u64, &data[i * d..(i + 1) * d]).unwrap();
        }
        sharded.delete(7).unwrap();
        sharded.sync().unwrap();
        assert_eq!(sharded.live_len(), n - 1);
        assert!(sharded.contains(3));
        assert!(!sharded.contains(7));
        let q: Vec<f32> = (0..d).map(|i| i as f32 * 0.3).collect();
        let opts = SearchOptions::new(5);
        let want = VectorIndex::search(&sharded, &q, &opts);
        drop(sharded);

        assert!(ShardedCollection::is_sharded_dir(&dir));
        let reopened = ShardedCollection::open(&dir).unwrap();
        assert_eq!(reopened.live_len(), n - 1);
        assert_eq!(VectorIndex::search(&reopened, &q, &opts), want);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_matches_single_shard_build() {
        let dir = std::env::temp_dir().join("pdx_sharded_vs_single");
        std::fs::remove_dir_all(&dir).ok();
        let (n, d) = (200, 5);
        let data = rows(n, d);
        let sharded = ShardedCollection::create(dir.join("many"), d, 4, small_config()).unwrap();
        let single = Collection::create(dir.join("one"), d, small_config()).unwrap();
        for i in 0..n {
            let row = &data[i * d..(i + 1) * d];
            sharded.insert(i as u64, row).unwrap();
            single.insert(i as u64, row).unwrap();
        }
        sharded.delete(11).unwrap();
        single.delete(11).unwrap();
        let q: Vec<f32> = (0..d).map(|i| (i as f32 * 0.9).cos()).collect();
        // Sequential visit order accumulates dimensions in a fixed
        // 0..dims order, so distances are independent of the block
        // composition — full bit-identity (ids AND distance bits)
        // between the two builds.
        let opts = SearchOptions::new(7).with_pruner(PrunerKind::Bond(VisitOrder::Sequential));
        let want = VectorIndex::search(&single, &q, &opts);
        assert_eq!(VectorIndex::search(&sharded, &q, &opts), want);
        for threads in [1usize, 2, 8] {
            assert_eq!(
                sharded.search_parallel(&q, &opts.with_threads(threads)),
                want,
                "{threads} threads"
            );
        }
        // Default visit order permutes dimensions per block, so only
        // the id sets are comparable across builds.
        let opts = SearchOptions::new(7);
        let a: Vec<u64> = VectorIndex::search(&sharded, &q, &opts)
            .iter()
            .map(|x| x.id)
            .collect();
        let b: Vec<u64> = VectorIndex::search(&single, &q, &opts)
            .iter()
            .map(|x| x.id)
            .collect();
        assert_eq!(a, b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_manifest_is_rejected() {
        let dir = std::env::temp_dir().join("pdx_sharded_corrupt");
        std::fs::remove_dir_all(&dir).ok();
        ShardedCollection::create(&dir, 4, 2, small_config()).unwrap();
        assert!(matches!(
            ShardedCollection::create(&dir, 4, 2, small_config()),
            Err(StoreError::Io(_))
        ));
        std::fs::write(dir.join(SHARDS_FILE), b"PDX4junk").unwrap();
        assert!(matches!(
            ShardedCollection::open(&dir),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::write(dir.join(SHARDS_FILE), b"NOPE000000000000").unwrap();
        assert!(matches!(
            ShardedCollection::open(&dir),
            Err(StoreError::Corrupt(_))
        ));
        assert!(ShardedCollection::create(&dir, 4, 0, small_config()).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn maintenance_fans_out_to_every_shard() {
        let dir = std::env::temp_dir().join("pdx_sharded_maintenance");
        std::fs::remove_dir_all(&dir).ok();
        let (n, d) = (120, 4);
        let data = rows(n, d);
        let sharded = ShardedCollection::create(&dir, d, 3, small_config()).unwrap();
        for i in 0..n {
            sharded.insert(i as u64, &data[i * d..(i + 1) * d]).unwrap();
        }
        sharded.seal().unwrap();
        assert!(sharded.shards().iter().all(|s| s.buffer_len() == 0));
        sharded.delete(5).unwrap();
        sharded.compact().unwrap();
        assert!(!sharded.contains(5));
        assert_eq!(sharded.live_len(), n - 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
