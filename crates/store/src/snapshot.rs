//! The immutable read view of a collection: what searches actually run
//! against.
//!
//! A [`Collection`](crate::Collection) keeps exactly one current
//! [`Snapshot`] behind an atomically-swapped `Arc`. Readers clone the
//! `Arc` (one refcount bump) and search a frozen, internally consistent
//! state — sealed segments, tombstones, an optional in-flight sealing
//! section, and the write-buffer view — while the writer keeps
//! mutating and publishing newer snapshots. No search ever takes the
//! writer lock, and no writer ever waits for a search.
//!
//! Everything inside a snapshot is structurally shared: segments are
//! `Arc<Segment>`, the tombstone set is a layered copy-on-write
//! structure ([`TombstoneSet`]), and the buffer view shares chunks with
//! the live buffer. Publishing a new snapshot after a single insert or
//! delete is therefore cheap — a handful of `Arc` clones — not a copy
//! of the collection.

use crate::buffer::BufferSnapshot;
use crate::Segment;
use pdx_core::engine::{SearchOptions, SearchSegment, SegmentedSearch, VectorIndex};
use pdx_core::heap::Neighbor;
use std::collections::HashSet;
use std::sync::Arc;

/// Roll the delta layer into the base once it reaches this size: keeps
/// per-delete publication O(delta) while amortizing the base copy.
const DELTA_ROLL: usize = 512;

/// A layered set of tombstoned external ids, cheap to clone and to
/// publish after every delete.
///
/// The set is two layers: a large shared `base` and a small `delta` of
/// recent deletes. Inserting copies at most the delta (copy-on-write);
/// when the delta reaches `DELTA_ROLL` entries it is folded into the
/// base. Cloning — which happens on every snapshot publication — is two
/// `Arc` clones regardless of size.
#[derive(Debug, Clone, Default)]
pub struct TombstoneSet {
    base: Arc<HashSet<u64>>,
    delta: Arc<HashSet<u64>>,
}

impl TombstoneSet {
    /// Whether `id` is tombstoned.
    pub fn contains(&self, id: u64) -> bool {
        self.delta.contains(&id) || self.base.contains(&id)
    }

    /// Number of tombstoned ids.
    pub fn len(&self) -> usize {
        // The two layers are kept disjoint by `insert`.
        self.base.len() + self.delta.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty() && self.delta.is_empty()
    }

    /// Iterates over all tombstoned ids (unordered).
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.base.iter().chain(self.delta.iter()).copied()
    }

    /// Inserts an id; returns whether it was newly inserted.
    pub fn insert(&mut self, id: u64) -> bool {
        if self.contains(id) {
            return false;
        }
        Arc::make_mut(&mut self.delta).insert(id);
        if self.delta.len() >= DELTA_ROLL {
            let delta = std::mem::take(&mut self.delta);
            Arc::make_mut(&mut self.base).extend(delta.iter().copied());
        }
        true
    }

    /// The ids of `self` that are **not** in `other` (the tombstones
    /// that arrived after `other` was captured).
    pub fn subtract(&self, other: &TombstoneSet) -> TombstoneSet {
        let survivors: HashSet<u64> = self.iter().filter(|&id| !other.contains(id)).collect();
        TombstoneSet {
            base: Arc::new(survivors),
            delta: Arc::new(HashSet::new()),
        }
    }

    /// All ids as one plain set (for compaction's row filtering).
    pub fn to_hashset(&self) -> HashSet<u64> {
        if self.delta.is_empty() {
            (*self.base).clone()
        } else {
            self.iter().collect()
        }
    }

    /// All ids, sorted (the manifest encoding order).
    pub fn to_sorted_vec(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.iter().collect();
        ids.sort_unstable();
        ids
    }
}

impl FromIterator<u64> for TombstoneSet {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        TombstoneSet {
            base: Arc::new(iter.into_iter().collect()),
            delta: Arc::new(HashSet::new()),
        }
    }
}

/// One sealed segment as seen by a snapshot: the shared immutable
/// segment plus how many of its rows were tombstoned when the snapshot
/// was taken (the merge over-fetch budget).
#[derive(Debug, Clone)]
pub struct SegmentView {
    /// The immutable sealed segment.
    pub segment: Arc<Segment>,
    /// Tombstoned rows of this segment at snapshot time.
    pub dead: usize,
}

/// An immutable, internally consistent point-in-time view of a
/// collection, searchable through [`VectorIndex`] without any locking.
///
/// Obtained from [`Collection::snapshot`](crate::Collection::snapshot)
/// (or implicitly by every `Collection` search). Results are
/// bit-identical to searching the collection itself at the moment the
/// snapshot was published, no matter what the writer does afterwards.
#[derive(Debug, Clone)]
pub struct Snapshot {
    dims: usize,
    segments: Vec<SegmentView>,
    tombstones: TombstoneSet,
    /// Buffer rows frozen by an in-flight seal/compaction, still served
    /// from memory until the job commits.
    sealing: Option<BufferSnapshot>,
    buffer: BufferSnapshot,
    live: usize,
}

impl Snapshot {
    /// Assembles a snapshot (crate-internal: the collection's writer
    /// half publishes these).
    pub(crate) fn new(
        dims: usize,
        segments: Vec<SegmentView>,
        tombstones: TombstoneSet,
        sealing: Option<BufferSnapshot>,
        buffer: BufferSnapshot,
        live: usize,
    ) -> Self {
        Self {
            dims,
            segments,
            tombstones,
            sealing,
            buffer,
            live,
        }
    }

    /// Dimensionality of the collection.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of live (searchable) vectors in this view.
    pub fn live_len(&self) -> usize {
        self.live
    }

    /// Number of sealed segments in this view.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Number of tombstoned ids in this view.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }

    /// The segmented read path over this view's sealed segments.
    fn segmented(&self) -> SegmentedSearch<'_> {
        SegmentedSearch::new(
            self.segments
                .iter()
                .map(|v| SearchSegment {
                    index: v.segment.index(),
                    remap: v.segment.remap(),
                    dead: v.dead,
                })
                .collect(),
        )
    }

    /// The exact-scan candidate lists of the memory-resident rows: the
    /// in-flight sealing section (if any) and the write buffer.
    fn memory_lists(&self, query: &[f32], opts: &SearchOptions) -> Vec<Vec<Neighbor>> {
        let mut lists = Vec::with_capacity(2);
        if let Some(sealing) = &self.sealing {
            lists.push(sealing.scan(query, opts.k, opts.metric, opts.kernel.horizontal_variant()));
        }
        lists.push(
            self.buffer
                .scan(query, opts.k, opts.metric, opts.kernel.horizontal_variant()),
        );
        lists
    }
}

impl VectorIndex for Snapshot {
    fn dims(&self) -> usize {
        self.dims
    }

    fn len(&self) -> usize {
        self.live
    }

    fn kind(&self) -> &'static str {
        "collection-snapshot"
    }

    /// Merges the memory-resident exact scans with every segment's
    /// search through the canonical `(distance, id)` order, dropping
    /// tombstoned rows during the merge — the collection's read path,
    /// frozen at snapshot time.
    fn search(&self, query: &[f32], opts: &SearchOptions) -> Vec<Neighbor> {
        if opts.k == 0 {
            return Vec::new();
        }
        let extra = self.memory_lists(query, opts);
        self.segmented()
            .search(&extra, query, opts, |id| !self.tombstones.contains(id))
    }

    /// Intra-query parallelism over the same view: each segment scans
    /// through its deployment's `search_parallel` (bit-identical to
    /// sequential at any thread count), the memory scans stay
    /// sequential, and the merge is canonical — so the result equals
    /// [`VectorIndex::search`] at any width.
    fn search_parallel(&self, query: &[f32], opts: &SearchOptions) -> Vec<Neighbor> {
        if opts.k == 0 {
            return Vec::new();
        }
        let extra = self.memory_lists(query, opts);
        self.segmented()
            .search_parallel(&extra, query, opts, |id| !self.tombstones.contains(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tombstone_set_layers_stay_consistent() {
        let mut set = TombstoneSet::default();
        // Push well past the roll threshold.
        for id in 0..2000u64 {
            assert!(set.insert(id));
            assert!(!set.insert(id), "double insert must report false");
        }
        assert_eq!(set.len(), 2000);
        assert!(set.contains(0));
        assert!(set.contains(1999));
        assert!(!set.contains(2000));
        let sorted = set.to_sorted_vec();
        assert_eq!(sorted.len(), 2000);
        assert_eq!(sorted[0], 0);
        assert_eq!(sorted[1999], 1999);
    }

    #[test]
    fn tombstone_clones_are_independent() {
        let mut set = TombstoneSet::default();
        for id in 0..600u64 {
            set.insert(id);
        }
        let frozen = set.clone();
        for id in 600..1200u64 {
            set.insert(id);
        }
        assert_eq!(frozen.len(), 600);
        assert!(!frozen.contains(700));
        assert_eq!(set.len(), 1200);

        let delta = set.subtract(&frozen);
        assert_eq!(delta.len(), 600);
        assert!(delta.contains(700));
        assert!(!delta.contains(10));
    }
}
