//! Store-side observability: WAL, maintenance and buffer families in
//! the process-global [`Registry`].
//!
//! Handles resolve once through `OnceLock` and record with relaxed
//! atomics, so the write path pays a few nanoseconds per operation.
//! All families are process-global — a process serving several
//! collections reports their combined totals.

use pdx_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::{Arc, OnceLock};

/// Registry handles for the write-ahead-log family.
pub(crate) struct WalMetrics {
    /// Latency of one record append (serialize + write + flush).
    pub append_us: Arc<Histogram>,
    /// Latency of one durable sync (`fsync`).
    pub fsync_us: Arc<Histogram>,
    /// Records made durable per group-commit sync.
    pub batch: Arc<Histogram>,
}

pub(crate) fn wal_metrics() -> &'static WalMetrics {
    static METRICS: OnceLock<WalMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = Registry::global();
        WalMetrics {
            append_us: r.histogram(
                "pdx_wal_append_us",
                "WAL record append latency (write + flush), microseconds.",
                &[],
            ),
            fsync_us: r.histogram("pdx_wal_fsync_us", "WAL fsync latency, microseconds.", &[]),
            batch: r.histogram(
                "pdx_wal_group_commit_batch",
                "Records made durable per group-commit sync.",
                &[],
            ),
        }
    })
}

/// Registry handles for one maintenance phase (`seal` or `compact`).
pub(crate) struct MaintMetrics {
    /// Whole freeze→build→commit cycle duration.
    pub duration_us: Arc<Histogram>,
    /// Payload bytes rewritten into the new segment.
    pub bytes_rewritten: Arc<Counter>,
}

fn maint_metrics(phase: &'static str) -> MaintMetrics {
    let r = Registry::global();
    let l = &[("phase", phase)][..];
    MaintMetrics {
        duration_us: r.histogram(
            "pdx_store_maintenance_us",
            "Seal / compaction cycle duration (freeze, build, commit), microseconds.",
            l,
        ),
        bytes_rewritten: r.counter(
            "pdx_store_maintenance_bytes_rewritten_total",
            "Payload bytes rewritten into new segments by seals and compactions.",
            l,
        ),
    }
}

pub(crate) fn seal_metrics() -> &'static MaintMetrics {
    static METRICS: OnceLock<MaintMetrics> = OnceLock::new();
    METRICS.get_or_init(|| maint_metrics("seal"))
}

pub(crate) fn compact_metrics() -> &'static MaintMetrics {
    static METRICS: OnceLock<MaintMetrics> = OnceLock::new();
    METRICS.get_or_init(|| maint_metrics("compact"))
}

/// Registry handles for the live collection-state gauges.
pub(crate) struct StateMetrics {
    /// Rows in write buffers (sealing sections included).
    pub buffer_rows: Arc<Gauge>,
    /// Live tombstones awaiting compaction.
    pub tombstones: Arc<Gauge>,
}

pub(crate) fn state_metrics() -> &'static StateMetrics {
    static METRICS: OnceLock<StateMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = Registry::global();
        StateMetrics {
            buffer_rows: r.gauge(
                "pdx_store_buffer_rows",
                "Rows currently in write buffers (sealing sections included).",
                &[],
            ),
            tombstones: r.gauge(
                "pdx_store_tombstones",
                "Tombstoned ids awaiting compaction.",
                &[],
            ),
        }
    })
}

/// Pre-registers every store family, so a scrape taken before the
/// first write already exposes them (at zero).
pub fn touch() {
    let _ = wal_metrics();
    let _ = seal_metrics();
    let _ = compact_metrics();
    let _ = state_metrics();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_registers_all_store_families() {
        touch();
        let out = Registry::global().render();
        for family in [
            "pdx_wal_append_us",
            "pdx_wal_fsync_us",
            "pdx_wal_group_commit_batch",
            "pdx_store_maintenance_us",
            "pdx_store_maintenance_bytes_rewritten_total",
            "pdx_store_buffer_rows",
            "pdx_store_tombstones",
        ] {
            assert!(out.contains(family), "missing {family} in:\n{out}");
        }
        assert!(out.contains("phase=\"seal\""));
        assert!(out.contains("phase=\"compact\""));
    }
}
