//! Immutable sealed segments: frozen PDX deployments with an
//! external-id remap table.
//!
//! A segment is born when the write buffer seals (or a compaction
//! rewrites the collection): its rows — sorted by external id — become a
//! [`FlatPdx`] or [`FlatSq8`] deployment with **local** row ids
//! `0..len`, and the sorted external ids become the remap table. The
//! monotone remap keeps the canonical `(distance, id)` tie order the
//! same in local and external id space, which is what lets segment
//! results merge bit-identically with the rest of the collection.
//!
//! On disk a segment is two files: the deployment as an ordinary
//! `PDX1`/`PDX2` container (`seg-<n>.pdx`) and the remap table
//! (`seg-<n>.ids`, magic `PDXI`).

use crate::manifest::{segment_file, segment_ids_file};
use crate::{StoreConfig, StoreError};
use pdx_core::engine::VectorIndex;
use pdx_datasets::persist::{read_container_path, write_pdx_path, write_sq8_path, Container};
use pdx_index::{FlatPdx, FlatSq8};
use std::collections::HashSet;
use std::io::{self, Read, Write};
use std::path::Path;

const IDS_MAGIC: &[u8; 4] = b"PDXI";
const IDS_VERSION: u32 = 1;

/// The frozen deployment inside a segment.
#[derive(Debug, Clone)]
enum SegmentData {
    /// Plain `f32` PDX partitions.
    F32(FlatPdx),
    /// SQ8-quantized partitions with an exact rerank payload.
    Sq8(FlatSq8),
}

/// One immutable sealed segment of a mutable collection.
///
/// Segments carry no mutable state at all — tombstone counts live in
/// the collection's writer/snapshot halves — so one `Arc<Segment>` can
/// be shared freely between the writer, any number of read snapshots,
/// and an in-flight background compaction.
#[derive(Debug, Clone)]
pub struct Segment {
    seq: u64,
    data: SegmentData,
    /// Local row id → external id, strictly increasing.
    remap: Vec<u64>,
}

impl Segment {
    /// Seals `(ids, rows)` — already sorted by external id — into an
    /// immutable segment with sequence number `seq`.
    ///
    /// # Errors
    /// [`StoreError::DuplicateId`] if the ids are not strictly
    /// increasing: a duplicate would make two physical rows answer to
    /// one external id, silently shadowing one of them.
    ///
    /// # Panics
    /// Panics if `rows` does not hold `ids.len()` whole vectors.
    pub fn seal(
        seq: u64,
        ids: Vec<u64>,
        rows: &[f32],
        dims: usize,
        config: &StoreConfig,
    ) -> Result<Self, StoreError> {
        assert_eq!(rows.len(), ids.len() * dims, "rows must be whole vectors");
        for pair in ids.windows(2) {
            if pair[1] <= pair[0] {
                return Err(StoreError::DuplicateId(pair[1]));
            }
        }
        let n = ids.len();
        let data = if config.quantize {
            SegmentData::Sq8(FlatSq8::build(
                rows,
                n,
                dims,
                config.block_size,
                config.group_size,
            ))
        } else {
            SegmentData::F32(FlatPdx::new(
                rows,
                n,
                dims,
                config.block_size,
                config.group_size,
            ))
        };
        Ok(Self {
            seq,
            data,
            remap: ids,
        })
    }

    /// Sequence number (file names derive from it).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Number of physical rows (tombstoned ones included).
    pub fn len(&self) -> usize {
        self.remap.len()
    }

    /// Whether the segment holds no rows.
    pub fn is_empty(&self) -> bool {
        self.remap.is_empty()
    }

    /// The local → external id remap table.
    pub fn remap(&self) -> &[u64] {
        &self.remap
    }

    /// The frozen deployment, served through the engine trait.
    pub fn index(&self) -> &dyn VectorIndex {
        match &self.data {
            SegmentData::F32(flat) => flat,
            SegmentData::Sq8(sq8) => sq8,
        }
    }

    /// Deployment kind of this segment (`flat-pdx` / `flat-sq8`).
    pub fn kind(&self) -> &'static str {
        self.index().kind()
    }

    /// Row-major `f32` rows by local id (for SQ8 segments this is the
    /// exact rerank payload, not a dequantization).
    pub fn rows(&self) -> Vec<f32> {
        match &self.data {
            SegmentData::F32(flat) => flat.to_rows(),
            SegmentData::Sq8(sq8) => sq8.rows.clone(),
        }
    }

    /// The surviving `(external ids, rows)` after dropping `tombstones`,
    /// in external-id order (the compaction input).
    pub fn live_rows(&self, tombstones: &HashSet<u64>) -> (Vec<u64>, Vec<f32>) {
        let dims = self.index().dims();
        let all = self.rows();
        let mut ids = Vec::with_capacity(self.remap.len());
        let mut rows = Vec::with_capacity(self.remap.len() * dims);
        for (local, &ext) in self.remap.iter().enumerate() {
            if !tombstones.contains(&ext) {
                ids.push(ext);
                rows.extend_from_slice(&all[local * dims..(local + 1) * dims]);
            }
        }
        (ids, rows)
    }

    /// Writes the segment's container and remap table into `dir` and
    /// fsyncs both (they must be durable before a manifest names them).
    ///
    /// # Errors
    /// Propagates IO errors.
    pub fn write(&self, dir: &Path) -> io::Result<()> {
        let container = dir.join(segment_file(self.seq));
        match &self.data {
            SegmentData::F32(flat) => write_pdx_path(&container, &flat.collection)?,
            SegmentData::Sq8(sq8) => {
                write_sq8_path(&container, &sq8.quantizer, &sq8.blocks, Some(&sq8.rows))?
            }
        }
        std::fs::File::open(&container)?.sync_all()?;
        let ids_path = dir.join(segment_ids_file(self.seq));
        let mut w = io::BufWriter::new(std::fs::File::create(&ids_path)?);
        w.write_all(IDS_MAGIC)?;
        w.write_all(&IDS_VERSION.to_le_bytes())?;
        w.write_all(&(self.remap.len() as u64).to_le_bytes())?;
        for id in &self.remap {
            w.write_all(&id.to_le_bytes())?;
        }
        w.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        Ok(())
    }

    /// Loads segment `seq` from `dir`, validating the remap table
    /// against the container (length, dimensionality, monotone ids).
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] on any mismatch; IO and container-format
    /// errors are propagated.
    pub fn load(dir: &Path, seq: u64, dims: usize) -> Result<Self, StoreError> {
        let container_path = dir.join(segment_file(seq));
        let data = match read_container_path(&container_path)
            .map_err(|e| StoreError::Corrupt(e.to_string()))?
        {
            Container::F32(collection) => SegmentData::F32(FlatPdx::from_collection(collection)),
            Container::Sq8(c) => {
                if c.rows.is_empty() {
                    return Err(StoreError::Corrupt(format!(
                        "{}: segment container has no rerank payload",
                        container_path.display()
                    )));
                }
                SegmentData::Sq8(FlatSq8::from_parts(c.dims, c.quantizer, c.blocks, c.rows))
            }
            Container::IvfF32(_) | Container::IvfSq8(_) => {
                return Err(StoreError::Corrupt(format!(
                    "{}: segments are flat containers, found an IVF-extended one",
                    container_path.display()
                )))
            }
        };
        let ids_path = dir.join(segment_ids_file(seq));
        let corrupt = |msg: String| StoreError::Corrupt(format!("{}: {msg}", ids_path.display()));
        let mut r = io::BufReader::new(std::fs::File::open(&ids_path)?);
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)
            .map_err(|_| corrupt("truncated remap table".into()))?;
        if &magic != IDS_MAGIC {
            return Err(corrupt("not a PDXI remap table".into()));
        }
        let mut u32_buf = [0u8; 4];
        r.read_exact(&mut u32_buf)
            .map_err(|_| corrupt("truncated remap table".into()))?;
        let version = u32::from_le_bytes(u32_buf);
        if version != IDS_VERSION {
            return Err(corrupt(format!("unsupported remap version {version}")));
        }
        let mut u64_buf = [0u8; 8];
        r.read_exact(&mut u64_buf)
            .map_err(|_| corrupt("truncated remap table".into()))?;
        let n_raw = u64::from_le_bytes(u64_buf);
        // Untrusted on-disk count: cross-check it against the file's
        // actual size (header 16 bytes + 8 per id, exactly) before
        // allocating, so a corrupt table yields `Corrupt`, not an OOM
        // abort.
        let ids_len = std::fs::metadata(&ids_path)?.len();
        if 16u64.saturating_add(n_raw.saturating_mul(8)) != ids_len {
            return Err(corrupt(format!(
                "remap count {n_raw} disagrees with table size {ids_len}"
            )));
        }
        let n = usize::try_from(n_raw).map_err(|_| corrupt("remap count overflows".into()))?;
        let mut remap = Vec::with_capacity(n.min(1 << 24));
        for _ in 0..n {
            r.read_exact(&mut u64_buf)
                .map_err(|_| corrupt("truncated remap table".into()))?;
            remap.push(u64::from_le_bytes(u64_buf));
        }
        let segment = Self { seq, data, remap };
        if segment.remap.len() != segment.index().len() {
            return Err(corrupt(format!(
                "remap table has {} ids, container has {} rows",
                segment.remap.len(),
                segment.index().len()
            )));
        }
        if segment.index().dims() != dims {
            return Err(corrupt(format!(
                "segment dims {} != collection dims {dims}",
                segment.index().dims()
            )));
        }
        if segment.remap.windows(2).any(|p| p[1] <= p[0]) {
            return Err(corrupt("remap table is not strictly increasing".into()));
        }
        Ok(segment)
    }

    /// Deletes the segment's files from `dir` (after a compaction's
    /// manifest commit made them unreachable).
    pub fn remove_files(dir: &Path, seq: u64) {
        std::fs::remove_file(dir.join(segment_file(seq))).ok();
        std::fs::remove_file(dir.join(segment_ids_file(seq))).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(quantize: bool) -> StoreConfig {
        StoreConfig {
            block_size: 8,
            group_size: 4,
            buffer_capacity: 64,
            quantize,
        }
    }

    #[test]
    fn seal_rejects_duplicate_and_unsorted_ids() {
        let rows: Vec<f32> = (0..6).map(|i| i as f32).collect();
        let err = Segment::seal(0, vec![1, 1, 2], &rows, 2, &config(false)).unwrap_err();
        assert!(matches!(err, StoreError::DuplicateId(1)));
        let err = Segment::seal(0, vec![2, 1, 3], &rows, 2, &config(false)).unwrap_err();
        assert!(matches!(err, StoreError::DuplicateId(1)));
    }

    #[test]
    fn write_load_round_trip_both_kinds() {
        let dir = std::env::temp_dir().join("pdx_store_segment_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let n = 30;
        let dims = 3;
        let rows: Vec<f32> = (0..n * dims).map(|i| (i as f32 * 0.37).sin()).collect();
        let ids: Vec<u64> = (0..n as u64).map(|i| i * 2 + 5).collect();
        for quantize in [false, true] {
            let seq = u64::from(quantize);
            let seg = Segment::seal(seq, ids.clone(), &rows, dims, &config(quantize)).unwrap();
            seg.write(&dir).unwrap();
            let back = Segment::load(&dir, seq, dims).unwrap();
            assert_eq!(back.remap(), seg.remap());
            assert_eq!(back.kind(), seg.kind());
            assert_eq!(back.rows(), seg.rows());
            // Live rows drop exactly the tombstoned ids, in order.
            let tombs: HashSet<u64> = [ids[0], ids[7]].into_iter().collect();
            let (live_ids, live_rows) = back.live_rows(&tombs);
            assert_eq!(live_ids.len(), n - 2);
            assert!(!live_ids.contains(&ids[0]));
            assert_eq!(live_rows.len(), (n - 2) * dims);
            assert_eq!(&live_rows[..dims], &rows[dims..2 * dims]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_mismatched_remap() {
        let dir = std::env::temp_dir().join("pdx_store_segment_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let rows: Vec<f32> = (0..20).map(|i| i as f32).collect();
        let seg = Segment::seal(3, (0..10).collect(), &rows, 2, &config(false)).unwrap();
        seg.write(&dir).unwrap();
        // Truncate the remap table: the count no longer matches.
        let ids_path = dir.join(segment_ids_file(3));
        let bytes = std::fs::read(&ids_path).unwrap();
        std::fs::write(&ids_path, &bytes[..bytes.len() - 8]).unwrap();
        assert!(matches!(
            Segment::load(&dir, 3, 2),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
