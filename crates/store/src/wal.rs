//! The append-only write-ahead log of buffered operations.
//!
//! Every insert/delete that touches the write buffer is appended here
//! **before** it mutates memory, so [`Collection::open`](crate::Collection::open)
//! can rebuild the buffer exactly after a crash. The log is rotated
//! (a fresh generation, named in the manifest) whenever a seal or
//! compaction makes its records redundant. Appends flush to the OS per
//! record ([`Wal::append`]) and reach stable storage at [`Wal::sync`] —
//! process-crash safety is per-record, power-loss safety is per-sync.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header  magic "PDXW" | version u32 | dims u32
//! record  tag u8 (1 = insert, 2 = delete)
//!         id u64
//!         vector dims × f32        (insert records only)
//!         checksum u32             (FNV-1a over tag..payload)
//! ```
//!
//! Replay reads records until the end of the file; a trailing record
//! that is incomplete or fails its checksum — the torn tail a crash
//! mid-append leaves — is truncated away, and every complete record
//! before it is returned. A torn *header* (crash at creation) resets the
//! file to an empty log.

use crate::StoreError;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"PDXW";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 12;

/// One durable buffered operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Insert `vector` under external id `id`.
    Insert {
        /// External id of the inserted vector.
        id: u64,
        /// The vector values.
        vector: Vec<f32>,
    },
    /// Delete external id `id` (a buffered row or a sealed tombstone).
    Delete {
        /// External id of the deleted vector.
        id: u64,
    },
}

/// FNV-1a, the record checksum (catches a torn tail whose length
/// happens to look complete).
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(16_777_619);
    }
    h
}

/// An open write-ahead log, positioned for appends.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    dims: usize,
    /// Bytes appended so far (header included).
    len: u64,
    /// Bytes known to have reached stable storage (grows at `sync`).
    synced_len: u64,
}

impl Wal {
    /// Creates a fresh, empty log (truncating any existing file).
    ///
    /// # Errors
    /// Propagates IO errors.
    pub fn create(path: &Path, dims: usize) -> io::Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(MAGIC)?;
        file.write_all(&VERSION.to_le_bytes())?;
        file.write_all(&(dims as u32).to_le_bytes())?;
        file.sync_all()?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            dims,
            len: HEADER_LEN as u64,
            synced_len: HEADER_LEN as u64,
        })
    }

    /// Opens (or creates) the log at `path`, replaying its complete
    /// records and truncating a torn tail in place. Returns the log —
    /// positioned for appends — and the replayed records in append
    /// order.
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] on a wrong magic/version/dims header;
    /// IO errors are propagated. Torn tails are *not* errors.
    pub fn open(path: &Path, dims: usize) -> Result<(Self, Vec<WalRecord>), StoreError> {
        if !path.exists() {
            // A crash between the manifest commit (which names this
            // generation) and the new file's creation: the log is
            // logically empty.
            return Ok((Self::create(path, dims)?, Vec::new()));
        }
        let bytes = std::fs::read(path)?;
        if bytes.len() < HEADER_LEN {
            // Torn header: the log never held a committed record.
            return Ok((Self::create(path, dims)?, Vec::new()));
        }
        if &bytes[..4] != MAGIC {
            return Err(StoreError::Corrupt(format!(
                "{}: not a PDXW write-ahead log",
                path.display()
            )));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(StoreError::Corrupt(format!(
                "{}: unsupported WAL version {version}",
                path.display()
            )));
        }
        let file_dims = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        if file_dims != dims {
            return Err(StoreError::Corrupt(format!(
                "{}: WAL dims {file_dims} != collection dims {dims}",
                path.display()
            )));
        }
        let (records, valid_end) = parse_records(&bytes, dims);
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        if valid_end < bytes.len() as u64 {
            // Torn tail: drop the partial record so future appends start
            // at a clean boundary.
            file.set_len(valid_end)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(valid_end))?;
        Ok((
            Self {
                file,
                path: path.to_path_buf(),
                dims,
                len: valid_end,
                synced_len: valid_end,
            },
            records,
        ))
    }

    /// Appends one record and flushes it to the OS.
    ///
    /// # Errors
    /// Propagates IO errors.
    ///
    /// # Panics
    /// Panics if an insert record's vector length disagrees with the
    /// log's dimensionality (the collection validates before logging).
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        let t0 = std::time::Instant::now();
        let mut buf = Vec::with_capacity(1 + 8 + self.dims * 4 + 4);
        match record {
            WalRecord::Insert { id, vector } => {
                assert_eq!(vector.len(), self.dims, "insert record dims");
                buf.push(1u8);
                buf.extend_from_slice(&id.to_le_bytes());
                for v in vector {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
            WalRecord::Delete { id } => {
                buf.push(2u8);
                buf.extend_from_slice(&id.to_le_bytes());
            }
        }
        let sum = fnv1a(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        self.file.write_all(&buf)?;
        self.file.flush()?;
        self.len += buf.len() as u64;
        crate::obs::wal_metrics()
            .append_us
            .record(t0.elapsed().as_micros() as u64);
        Ok(())
    }

    /// Forces all appended records to stable storage.
    ///
    /// # Errors
    /// Propagates IO errors.
    pub fn sync(&mut self) -> io::Result<()> {
        let t0 = std::time::Instant::now();
        self.file.sync_all()?;
        self.synced_len = self.len;
        crate::obs::wal_metrics()
            .fsync_us
            .record(t0.elapsed().as_micros() as u64);
        Ok(())
    }

    /// Bytes appended so far, header included.
    pub fn appended_len(&self) -> u64 {
        self.len
    }

    /// Bytes guaranteed durable by the log's own `sync` calls: a power
    /// loss may tear anything past this offset, nothing before it.
    pub fn synced_len(&self) -> u64 {
        self.synced_len
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Walks `bytes` from the header on, returning the complete records and
/// the offset where the first torn/corrupt record begins.
fn parse_records(bytes: &[u8], dims: usize) -> (Vec<WalRecord>, u64) {
    let mut records = Vec::new();
    let mut at = HEADER_LEN;
    loop {
        let start = at;
        let Some(&tag) = bytes.get(at) else {
            return (records, start as u64);
        };
        let body_len = match tag {
            1 => 1 + 8 + dims * 4,
            2 => 1 + 8,
            // An unknown tag can only be a torn/corrupt tail; nothing
            // after it can be trusted.
            _ => return (records, start as u64),
        };
        let Some(body) = bytes.get(start..start + body_len) else {
            return (records, start as u64);
        };
        let Some(sum_bytes) = bytes.get(start + body_len..start + body_len + 4) else {
            return (records, start as u64);
        };
        let sum = u32::from_le_bytes(sum_bytes.try_into().unwrap());
        if sum != fnv1a(body) {
            return (records, start as u64);
        }
        let id = u64::from_le_bytes(body[1..9].try_into().unwrap());
        records.push(match tag {
            1 => WalRecord::Insert {
                id,
                vector: body[9..]
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect(),
            },
            _ => WalRecord::Delete { id },
        });
        at = start + body_len + 4;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pdx_store_wal_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert {
                id: 3,
                vector: vec![1.0, 2.0],
            },
            WalRecord::Insert {
                id: 9,
                vector: vec![-1.0, 0.5],
            },
            WalRecord::Delete { id: 3 },
        ]
    }

    #[test]
    fn round_trip_replays_in_order() {
        let path = temp_path("round_trip.log");
        let mut wal = Wal::create(&path, 2).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        drop(wal);
        let (_wal, replayed) = Wal::open(&path, 2).unwrap();
        assert_eq!(replayed, sample_records());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let path = temp_path("torn_tail.log");
        let mut wal = Wal::create(&path, 2).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        drop(wal);
        // Tear the last record in half.
        let full = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full - 5).unwrap();
        drop(file);

        let (mut wal, replayed) = Wal::open(&path, 2).unwrap();
        assert_eq!(replayed, sample_records()[..2]);
        // The file is clean again: appends after the torn record replay.
        wal.append(&WalRecord::Delete { id: 9 }).unwrap();
        drop(wal);
        let (_wal, replayed) = Wal::open(&path, 2).unwrap();
        assert_eq!(replayed.len(), 3);
        assert_eq!(replayed[2], WalRecord::Delete { id: 9 });
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checksum_cuts_the_tail() {
        let path = temp_path("bad_sum.log");
        let mut wal = Wal::create(&path, 1).unwrap();
        wal.append(&WalRecord::Insert {
            id: 1,
            vector: vec![1.0],
        })
        .unwrap();
        wal.append(&WalRecord::Delete { id: 1 }).unwrap();
        drop(wal);
        // Flip a byte inside the *last* record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 6] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_wal, replayed) = Wal::open(&path, 1).unwrap();
        assert_eq!(replayed.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_header_is_corrupt_but_missing_file_is_empty() {
        let path = temp_path("bad_header.log");
        std::fs::write(&path, b"NOPEnotawal_____").unwrap();
        assert!(matches!(Wal::open(&path, 2), Err(StoreError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
        let (_wal, replayed) = Wal::open(&path, 2).unwrap();
        assert!(replayed.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
