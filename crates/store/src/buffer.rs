//! The in-memory write buffer: the mutable head of a collection.

use crate::StoreError;
use pdx_core::distance::Metric;
use pdx_core::heap::{KnnHeap, Neighbor};
use pdx_core::kernels::{nary_distance, KernelVariant};
use std::collections::HashMap;

/// An append buffer of `(external id, vector)` pairs, searched by exact
/// linear scan.
///
/// The buffer is the only mutable part of a
/// [`Collection`](crate::Collection): inserts append here (after being
/// logged to the WAL), deletes of buffered rows remove in place, and a
/// seal drains the whole buffer — sorted by external id — into an
/// immutable segment.
#[derive(Debug, Clone, Default)]
pub struct WriteBuffer {
    dims: usize,
    ids: Vec<u64>,
    rows: Vec<f32>,
    /// External id → position in `ids`/`rows`.
    index: HashMap<u64, usize>,
}

impl WriteBuffer {
    /// An empty buffer for `dims`-dimensional vectors.
    ///
    /// # Panics
    /// Panics if `dims == 0`.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "dims must be positive");
        Self {
            dims,
            ids: Vec::new(),
            rows: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Dimensionality of the buffered vectors.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of buffered vectors.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the buffer holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Whether `id` is buffered.
    pub fn contains(&self, id: u64) -> bool {
        self.index.contains_key(&id)
    }

    /// Appends one vector under an external id.
    ///
    /// # Errors
    /// [`StoreError::DimsMismatch`] for a wrong-length vector,
    /// [`StoreError::DuplicateId`] if the id is already buffered — an
    /// insert never silently shadows an existing row.
    pub fn append(&mut self, id: u64, vector: &[f32]) -> Result<(), StoreError> {
        if vector.len() != self.dims {
            return Err(StoreError::DimsMismatch {
                expected: self.dims,
                got: vector.len(),
            });
        }
        if self.index.contains_key(&id) {
            return Err(StoreError::DuplicateId(id));
        }
        self.index.insert(id, self.ids.len());
        self.ids.push(id);
        self.rows.extend_from_slice(vector);
        Ok(())
    }

    /// Removes a buffered vector (swap-remove; buffer order is not
    /// observable — scans use the canonical heap and seals sort by id).
    ///
    /// # Errors
    /// [`StoreError::NotFound`] if the id is not buffered.
    pub fn remove(&mut self, id: u64) -> Result<(), StoreError> {
        let pos = self.index.remove(&id).ok_or(StoreError::NotFound(id))?;
        let last = self.ids.len() - 1;
        self.ids.swap_remove(pos);
        // Move the last row into the vacated slot, then truncate.
        if pos != last {
            let (head, tail) = self.rows.split_at_mut(last * self.dims);
            head[pos * self.dims..(pos + 1) * self.dims].copy_from_slice(&tail[..self.dims]);
            self.index.insert(self.ids[pos], pos);
        }
        self.rows.truncate(last * self.dims);
        Ok(())
    }

    /// Exact linear scan: the canonical top-`k` of the buffered vectors
    /// by `(distance, external id)`.
    pub fn scan(
        &self,
        query: &[f32],
        k: usize,
        metric: Metric,
        variant: KernelVariant,
    ) -> Vec<Neighbor> {
        if self.ids.is_empty() {
            return Vec::new();
        }
        let mut heap = KnnHeap::new(k);
        for (pos, &id) in self.ids.iter().enumerate() {
            let row = &self.rows[pos * self.dims..(pos + 1) * self.dims];
            heap.push(id, nary_distance(metric, variant, query, row));
        }
        heap.into_sorted()
    }

    /// The buffered entries sorted by external id: the seal order, which
    /// keeps every segment's remap table monotone so local and external
    /// `(distance, id)` tie orders agree.
    pub fn entries_sorted(&self) -> (Vec<u64>, Vec<f32>) {
        let mut order: Vec<usize> = (0..self.ids.len()).collect();
        order.sort_unstable_by_key(|&pos| self.ids[pos]);
        let ids: Vec<u64> = order.iter().map(|&pos| self.ids[pos]).collect();
        let mut rows = Vec::with_capacity(self.rows.len());
        for &pos in &order {
            rows.extend_from_slice(&self.rows[pos * self.dims..(pos + 1) * self.dims]);
        }
        (ids, rows)
    }

    /// Drops all buffered entries (after a seal consumed them).
    pub fn clear(&mut self) {
        self.ids.clear();
        self.rows.clear();
        self.index.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_scan_and_remove() {
        let mut buf = WriteBuffer::new(2);
        buf.append(10, &[0.0, 0.0]).unwrap();
        buf.append(7, &[1.0, 0.0]).unwrap();
        buf.append(3, &[2.0, 0.0]).unwrap();
        assert_eq!(buf.len(), 3);
        let hits = buf.scan(&[0.0, 0.0], 2, Metric::L2, KernelVariant::Scalar);
        let ids: Vec<u64> = hits.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![10, 7]);

        buf.remove(10).unwrap();
        assert!(!buf.contains(10));
        let hits = buf.scan(&[0.0, 0.0], 2, Metric::L2, KernelVariant::Scalar);
        let ids: Vec<u64> = hits.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![7, 3]);
        assert!(matches!(buf.remove(10), Err(StoreError::NotFound(10))));
    }

    #[test]
    fn duplicate_and_ragged_appends_are_typed_errors() {
        let mut buf = WriteBuffer::new(2);
        buf.append(1, &[0.0, 0.0]).unwrap();
        assert!(matches!(
            buf.append(1, &[1.0, 1.0]),
            Err(StoreError::DuplicateId(1))
        ));
        assert!(matches!(
            buf.append(2, &[1.0]),
            Err(StoreError::DimsMismatch {
                expected: 2,
                got: 1
            })
        ));
        // The failed appends left no trace.
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn entries_sorted_by_external_id() {
        let mut buf = WriteBuffer::new(1);
        for id in [5u64, 1, 9, 2] {
            buf.append(id, &[id as f32]).unwrap();
        }
        buf.remove(9).unwrap();
        let (ids, rows) = buf.entries_sorted();
        assert_eq!(ids, vec![1, 2, 5]);
        assert_eq!(rows, vec![1.0, 2.0, 5.0]);
    }
}
