//! The in-memory write buffer: the mutable head of a collection.
//!
//! The buffer is chunked and persistent (in the data-structure sense):
//! rows live in immutable reference-counted chunks, only the tail chunk
//! is ever mutated, and mutation goes through [`Arc::make_mut`] — so a
//! [`BufferSnapshot`] taken at any point keeps observing exactly the
//! rows it saw, for free, while the writer keeps appending. Deletes are
//! logical (a shared dead-id set) and are physically purged when the
//! buffer is sealed or when dead rows start to dominate.

use crate::StoreError;
use pdx_core::distance::Metric;
use pdx_core::heap::{KnnHeap, Neighbor};
use pdx_core::kernels::{nary_distance, KernelVariant};
use std::collections::HashSet;
use std::sync::Arc;

/// Rows per buffer chunk. Small enough that the copy-on-write tail
/// clone after a snapshot stays cheap, large enough that a snapshot of
/// a full buffer is a short `Vec` of `Arc`s.
const CHUNK_ROWS: usize = 32;

/// One immutable run of buffered rows (ids parallel to row data).
#[derive(Debug, Clone, Default)]
pub(crate) struct BufChunk {
    pub(crate) ids: Vec<u64>,
    pub(crate) rows: Vec<f32>,
}

impl BufChunk {
    pub(crate) fn row(&self, pos: usize, dims: usize) -> &[f32] {
        &self.rows[pos * dims..(pos + 1) * dims]
    }
}

/// An append buffer of `(external id, vector)` pairs, searched by exact
/// linear scan.
///
/// The buffer is the only mutable part of a
/// [`Collection`](crate::Collection): inserts append here (after being
/// logged to the WAL), deletes of buffered rows hide them in place, and
/// a seal drains the whole buffer — sorted by external id — into an
/// immutable segment. [`WriteBuffer::snapshot`] captures the current
/// contents as an immutable view that stays valid while the buffer
/// keeps mutating.
#[derive(Debug, Clone, Default)]
pub struct WriteBuffer {
    dims: usize,
    /// Full immutable chunks, oldest first.
    full: Vec<Arc<BufChunk>>,
    /// The growing tail chunk (copy-on-write once snapshotted).
    tail: Arc<BufChunk>,
    /// Ids logically deleted but still physically present in a chunk.
    dead: Arc<HashSet<u64>>,
    /// Live buffered ids.
    live: HashSet<u64>,
}

impl WriteBuffer {
    /// An empty buffer for `dims`-dimensional vectors.
    ///
    /// # Panics
    /// Panics if `dims == 0`.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "dims must be positive");
        Self {
            dims,
            full: Vec::new(),
            tail: Arc::new(BufChunk::default()),
            dead: Arc::new(HashSet::new()),
            live: HashSet::new(),
        }
    }

    /// Dimensionality of the buffered vectors.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of buffered (live) vectors.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether the buffer holds no live vectors.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Whether `id` is buffered (live).
    pub fn contains(&self, id: u64) -> bool {
        self.live.contains(&id)
    }

    /// Appends one vector under an external id.
    ///
    /// # Errors
    /// [`StoreError::DimsMismatch`] for a wrong-length vector,
    /// [`StoreError::DuplicateId`] if the id is already buffered — an
    /// insert never silently shadows an existing row.
    pub fn append(&mut self, id: u64, vector: &[f32]) -> Result<(), StoreError> {
        if vector.len() != self.dims {
            return Err(StoreError::DimsMismatch {
                expected: self.dims,
                got: vector.len(),
            });
        }
        if self.live.contains(&id) {
            return Err(StoreError::DuplicateId(id));
        }
        // A re-insert of a logically deleted id must not leave two
        // physical rows with the same id behind a snapshot-visible
        // chunk, so drop the dead rows first (rare path).
        if self.dead.contains(&id) {
            self.purge_dead();
        }
        if self.tail.ids.len() >= CHUNK_ROWS {
            let sealed = std::mem::take(&mut self.tail);
            self.full.push(sealed);
        }
        let tail = Arc::make_mut(&mut self.tail);
        tail.ids.push(id);
        tail.rows.extend_from_slice(vector);
        self.live.insert(id);
        Ok(())
    }

    /// Removes a buffered vector (logically; the row is hidden from
    /// scans and snapshots immediately and physically dropped at the
    /// next seal or purge).
    ///
    /// # Errors
    /// [`StoreError::NotFound`] if the id is not buffered.
    pub fn remove(&mut self, id: u64) -> Result<(), StoreError> {
        if !self.live.remove(&id) {
            return Err(StoreError::NotFound(id));
        }
        Arc::make_mut(&mut self.dead).insert(id);
        // Keep memory bounded when deletes dominate: once dead rows
        // outnumber live ones, rebuild the chunks without them.
        if self.dead.len() >= CHUNK_ROWS * 2 && self.dead.len() > self.live.len() {
            self.purge_dead();
        }
        Ok(())
    }

    /// Rebuilds the chunks without the logically deleted rows.
    fn purge_dead(&mut self) {
        if self.dead.is_empty() {
            return;
        }
        let entries: Vec<(u64, Vec<f32>)> = self
            .iter_rows()
            .filter(|(id, _)| self.live.contains(id))
            .map(|(id, row)| (id, row.to_vec()))
            .collect();
        self.full.clear();
        self.tail = Arc::new(BufChunk::default());
        self.dead = Arc::new(HashSet::new());
        for (id, row) in entries {
            if self.tail.ids.len() >= CHUNK_ROWS {
                let sealed = std::mem::take(&mut self.tail);
                self.full.push(sealed);
            }
            let tail = Arc::make_mut(&mut self.tail);
            tail.ids.push(id);
            tail.rows.extend_from_slice(&row);
        }
    }

    /// All physical rows, in chunk order (including logically deleted
    /// ones — callers filter against `live`/`dead` as appropriate).
    fn iter_rows(&self) -> impl Iterator<Item = (u64, &[f32])> {
        let dims = self.dims;
        self.full
            .iter()
            .chain(std::iter::once(&self.tail))
            .flat_map(move |chunk| {
                chunk
                    .ids
                    .iter()
                    .enumerate()
                    .map(move |(pos, &id)| (id, chunk.row(pos, dims)))
            })
    }

    /// Exact linear scan: the canonical top-`k` of the buffered vectors
    /// by `(distance, external id)`.
    pub fn scan(
        &self,
        query: &[f32],
        k: usize,
        metric: Metric,
        variant: KernelVariant,
    ) -> Vec<Neighbor> {
        if self.live.is_empty() {
            return Vec::new();
        }
        let mut heap = KnnHeap::new(k);
        for (id, row) in self.iter_rows() {
            if !self.dead.is_empty() && self.dead.contains(&id) {
                continue;
            }
            heap.push(id, nary_distance(metric, variant, query, row));
        }
        heap.into_sorted()
    }

    /// The live buffered entries sorted by external id: the seal order,
    /// which keeps every segment's remap table monotone so local and
    /// external `(distance, id)` tie orders agree.
    pub fn entries_sorted(&self) -> (Vec<u64>, Vec<f32>) {
        let mut entries: Vec<(u64, &[f32])> = self
            .iter_rows()
            .filter(|(id, _)| self.live.contains(id))
            .collect();
        entries.sort_unstable_by_key(|&(id, _)| id);
        let ids: Vec<u64> = entries.iter().map(|&(id, _)| id).collect();
        let mut rows = Vec::with_capacity(ids.len() * self.dims);
        for (_, row) in entries {
            rows.extend_from_slice(row);
        }
        (ids, rows)
    }

    /// Drops all buffered entries (after a seal consumed them).
    pub fn clear(&mut self) {
        self.full.clear();
        self.tail = Arc::new(BufChunk::default());
        self.dead = Arc::new(HashSet::new());
        self.live.clear();
    }

    /// The live entries, in chunk order (the WAL re-log order at a
    /// maintenance commit).
    pub(crate) fn live_entries(&self) -> impl Iterator<Item = (u64, &[f32])> {
        self.iter_rows().filter(|(id, _)| self.live.contains(id))
    }

    /// Freezes the current live contents for sealing: physically purges
    /// logically deleted rows, hands the chunk list to the caller, and
    /// leaves the buffer empty. The returned chunks are immutable and
    /// hold live rows only.
    pub(crate) fn freeze(&mut self) -> Vec<Arc<BufChunk>> {
        self.purge_dead();
        let mut chunks = std::mem::take(&mut self.full);
        let tail = std::mem::take(&mut self.tail);
        if !tail.ids.is_empty() {
            chunks.push(tail);
        }
        self.live.clear();
        chunks
    }

    /// An immutable view of the current contents. The snapshot keeps
    /// observing exactly the rows (and deletions) visible now, no
    /// matter how the buffer mutates afterwards; taking one costs a
    /// handful of `Arc` clones plus one tail-chunk copy-on-write at the
    /// next append.
    pub fn snapshot(&self) -> BufferSnapshot {
        let mut chunks = self.full.clone();
        if !self.tail.ids.is_empty() {
            chunks.push(Arc::clone(&self.tail));
        }
        BufferSnapshot {
            dims: self.dims,
            chunks,
            dead: Arc::clone(&self.dead),
            live: self.live.len(),
        }
    }
}

/// An immutable point-in-time view of a [`WriteBuffer`].
///
/// Snapshots share chunk storage with the buffer (and with each other);
/// they are cheap to clone and are `Send + Sync`.
#[derive(Debug, Clone, Default)]
pub struct BufferSnapshot {
    dims: usize,
    chunks: Vec<Arc<BufChunk>>,
    dead: Arc<HashSet<u64>>,
    live: usize,
}

impl BufferSnapshot {
    /// Assembles a view from raw parts (crate-internal: used for the
    /// frozen buffer section of an in-flight seal).
    pub(crate) fn from_parts(
        dims: usize,
        chunks: Vec<Arc<BufChunk>>,
        dead: Arc<HashSet<u64>>,
        live: usize,
    ) -> Self {
        Self {
            dims,
            chunks,
            dead,
            live,
        }
    }

    /// Number of live rows in the view.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the view holds no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The live entries of the view, in chunk order.
    pub(crate) fn live_entries(&self) -> impl Iterator<Item = (u64, &[f32])> {
        let dims = self.dims;
        let dead = &self.dead;
        self.chunks.iter().flat_map(move |chunk| {
            chunk
                .ids
                .iter()
                .enumerate()
                .filter(move |(_, id)| !dead.contains(id))
                .map(move |(pos, &id)| (id, chunk.row(pos, dims)))
        })
    }

    /// Exact linear scan: the canonical top-`k` of the view's live rows
    /// by `(distance, external id)`.
    pub fn scan(
        &self,
        query: &[f32],
        k: usize,
        metric: Metric,
        variant: KernelVariant,
    ) -> Vec<Neighbor> {
        if self.live == 0 {
            return Vec::new();
        }
        let mut heap = KnnHeap::new(k);
        for (id, row) in self.live_entries() {
            heap.push(id, nary_distance(metric, variant, query, row));
        }
        heap.into_sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_scan_and_remove() {
        let mut buf = WriteBuffer::new(2);
        buf.append(10, &[0.0, 0.0]).unwrap();
        buf.append(7, &[1.0, 0.0]).unwrap();
        buf.append(3, &[2.0, 0.0]).unwrap();
        assert_eq!(buf.len(), 3);
        let hits = buf.scan(&[0.0, 0.0], 2, Metric::L2, KernelVariant::Scalar);
        let ids: Vec<u64> = hits.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![10, 7]);

        buf.remove(10).unwrap();
        assert!(!buf.contains(10));
        let hits = buf.scan(&[0.0, 0.0], 2, Metric::L2, KernelVariant::Scalar);
        let ids: Vec<u64> = hits.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![7, 3]);
        assert!(matches!(buf.remove(10), Err(StoreError::NotFound(10))));
    }

    #[test]
    fn duplicate_and_ragged_appends_are_typed_errors() {
        let mut buf = WriteBuffer::new(2);
        buf.append(1, &[0.0, 0.0]).unwrap();
        assert!(matches!(
            buf.append(1, &[1.0, 1.0]),
            Err(StoreError::DuplicateId(1))
        ));
        assert!(matches!(
            buf.append(2, &[1.0]),
            Err(StoreError::DimsMismatch {
                expected: 2,
                got: 1
            })
        ));
        // The failed appends left no trace.
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn entries_sorted_by_external_id() {
        let mut buf = WriteBuffer::new(1);
        for id in [5u64, 1, 9, 2] {
            buf.append(id, &[id as f32]).unwrap();
        }
        buf.remove(9).unwrap();
        let (ids, rows) = buf.entries_sorted();
        assert_eq!(ids, vec![1, 2, 5]);
        assert_eq!(rows, vec![1.0, 2.0, 5.0]);
    }

    #[test]
    fn snapshot_is_immune_to_later_mutation() {
        let mut buf = WriteBuffer::new(1);
        for id in 0..100u64 {
            buf.append(id, &[id as f32]).unwrap();
        }
        let snap = buf.snapshot();
        assert_eq!(snap.len(), 100);

        // Mutate the buffer heavily after the snapshot.
        for id in 0..50u64 {
            buf.remove(id).unwrap();
        }
        for id in 200..260u64 {
            buf.append(id, &[id as f32]).unwrap();
        }
        buf.remove(203).unwrap();

        // The snapshot still sees exactly the original 100 rows.
        assert_eq!(snap.len(), 100);
        let hits = snap.scan(&[0.0], 3, Metric::L2, KernelVariant::Scalar);
        let ids: Vec<u64> = hits.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let mut ids: Vec<u64> = snap.live_entries().map(|(id, _)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..100).collect::<Vec<u64>>());

        // And the buffer sees the new state.
        assert_eq!(buf.len(), 109);
        assert!(!buf.contains(3));
        assert!(buf.contains(204));
    }

    #[test]
    fn reinsert_after_buffer_delete_keeps_one_physical_row() {
        let mut buf = WriteBuffer::new(1);
        buf.append(1, &[1.0]).unwrap();
        buf.append(2, &[2.0]).unwrap();
        buf.remove(1).unwrap();
        buf.append(1, &[10.0]).unwrap();
        assert_eq!(buf.len(), 2);
        let hits = buf.scan(&[10.0], 2, Metric::L2, KernelVariant::Scalar);
        assert_eq!(hits[0].id, 1);
        assert_eq!(hits[0].distance, 0.0);
        let (ids, rows) = buf.entries_sorted();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(rows, vec![10.0, 2.0]);
    }

    #[test]
    fn heavy_deletes_purge_physical_rows() {
        let mut buf = WriteBuffer::new(1);
        for id in 0..256u64 {
            buf.append(id, &[id as f32]).unwrap();
        }
        for id in 0..200u64 {
            buf.remove(id).unwrap();
        }
        assert_eq!(buf.len(), 56);
        let (ids, _) = buf.entries_sorted();
        assert_eq!(ids, (200..256).collect::<Vec<u64>>());
        // The purge heuristic kicked in: dead rows were dropped.
        assert!(buf.dead.len() < 200);
    }
}
