#![warn(missing_docs)]

//! # pdx-store — the mutable segmented collection store
//!
//! Every deployment below this crate is build-once and immutable: PDX
//! blocks are constructed in one shot and never change. This crate adds
//! the LSM-style mutable layer that serves live traffic on top of those
//! frozen parts:
//!
//! * [`WriteBuffer`] — an in-memory append log of `(external id,
//!   vector)` pairs, searched by exact linear scan. Inserts land here.
//! * **Sealed segments** — when the buffer fills (or on an explicit
//!   seal), its rows become an immutable [`FlatPdx`](pdx_index::FlatPdx)
//!   or [`FlatSq8`](pdx_index::FlatSq8) segment served through
//!   [`VectorIndex`](pdx_core::engine::VectorIndex), with a per-segment
//!   remap table from local row ids to external ids.
//! * **Tombstones** — deletes of sealed rows are recorded in a tombstone
//!   set and filtered during the canonical heap merge (and purged for
//!   good at seal/compaction time).
//! * [`Collection::compact`] — merges all segments and the buffer,
//!   drops tombstoned rows, and rewrites the surviving rows as one
//!   freshly partitioned segment. Post-compaction searches are
//!   bit-identical to a fresh flat build over the surviving rows.
//!
//! Searches go through
//! [`SegmentedSearch`](pdx_core::engine::SegmentedSearch): each segment
//! over-fetches by its tombstone count, results remap to external ids,
//! and one canonical `(distance, id)` merge — the same order the
//! parallel execution engine uses — combines them with the buffer scan.
//! Batch and intra-query parallel searches are therefore bit-identical
//! to the sequential path at any thread count, live tombstones included.
//!
//! ## Concurrency
//!
//! A [`Collection`] is safe to share across threads (`&self` write
//! ops): reads run lock-free against an atomically-swapped immutable
//! [`Snapshot`], the writer half sits behind a mutex, and sealing or
//! compaction can run as a background job
//! ([`Collection::seal_background`] /
//! [`Collection::compact_background`]) that builds the new segment off
//! to the side and commits with one atomic view swap — reads *and*
//! writes keep flowing throughout, and a search issued at any moment
//! returns results bit-identical to the snapshot it pinned. See the
//! [`collection`](Collection) module docs for the full model and the
//! durable commit protocol.
//!
//! ## Crash safety
//!
//! A persistent collection lives in a directory:
//!
//! ```text
//! <dir>/MANIFEST        versioned "PDX3" file: config, segment list,
//!                       tombstones, current WAL generation
//! <dir>/seg-<n>.pdx     sealed segment (a PDX1/PDX2 container)
//! <dir>/seg-<n>.ids     the segment's external-id remap table
//! <dir>/wal-<n>.log     append-only write-ahead log of buffered ops
//! ```
//!
//! Invariants, in commit order:
//!
//! 1. every buffered insert/delete is appended to the WAL **before** it
//!    mutates memory;
//! 2. a seal/compaction writes its segment files first, then commits by
//!    atomically renaming a new `MANIFEST` (which names a fresh WAL
//!    generation), and only then deletes the obsolete WAL/segments;
//! 3. [`Collection::open`] replays the manifest's WAL with **torn-tail
//!    truncation**: a half-written trailing record (crash mid-append) is
//!    detected by length/checksum and truncated, and every complete
//!    record before it is replayed.
//!
//! A seal/compaction commit additionally creates its fresh WAL
//! generation — with the rows still buffered in memory re-logged and
//! fsynced — **before** the manifest rename, and deletes the old
//! generation only after it: a failure anywhere in the rotation leaves
//! the previous manifest + WAL authoritative, so no acknowledged write
//! is ever diverted into a log recovery would not read. Files such a
//! failure strands (segments, WAL generations, `MANIFEST.tmp`) are
//! swept by [`Collection::open`].
//!
//! A **process** crash at any point therefore loses at most the tail
//! record that was being written, never a committed one, and orphaned
//! segment files from an uncommitted seal are ignored by the manifest.
//! WAL appends are flushed to the OS per operation but fsynced only at
//! [`Collection::sync`] and at every seal/compaction commit — so
//! against a *power loss* the durability points are the sync calls and
//! the manifest commits (the CLI syncs at the end of each `insert`/
//! `delete` command). Call [`Collection::sync`] more often — or set a
//! [`GroupCommit`] policy via [`Collection::set_group_commit`] to fsync
//! every N records or every interval — if you need tighter power-loss
//! bounds.

use std::fmt;
use std::io;

mod buffer;
mod collection;
mod manifest;
pub mod obs;
mod segment;
mod sharded;
mod snapshot;
mod wal;

pub use buffer::{BufferSnapshot, WriteBuffer};
pub use collection::{Collection, GroupCommit, MaintenanceJob, SegmentStat};
pub use manifest::{Manifest, MANIFEST_FILE, MANIFEST_MAGIC};
pub use segment::Segment;
pub use sharded::{ShardedCollection, SHARDS_FILE, SHARDS_MAGIC};
pub use snapshot::{SegmentView, Snapshot, TombstoneSet};
pub use wal::{Wal, WalRecord};

/// Build/maintenance knobs of a mutable collection, fixed at creation
/// and persisted in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Partition size of sealed segments (vectors per PDX block).
    pub block_size: usize,
    /// PDX group size of sealed segments.
    pub group_size: usize,
    /// Buffer size at which an insert triggers an automatic seal.
    pub buffer_capacity: usize,
    /// Seal segments as SQ8-quantized deployments (`PDX2` containers
    /// with an exact rerank payload) instead of plain `f32`.
    pub quantize: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            block_size: pdx_core::DEFAULT_EXACT_BLOCK,
            group_size: pdx_core::DEFAULT_GROUP_SIZE,
            buffer_capacity: pdx_core::DEFAULT_EXACT_BLOCK,
            quantize: false,
        }
    }
}

/// Errors of the mutable store.
#[derive(Debug)]
pub enum StoreError {
    /// The external id is already live (or still tombstoned — a deleted
    /// id stays reserved until [`Collection::compact`] purges it).
    DuplicateId(u64),
    /// The external id is not live in the collection.
    NotFound(u64),
    /// A vector's length does not match the collection dimensionality.
    DimsMismatch {
        /// The collection's dimensionality.
        expected: usize,
        /// The offending vector's length.
        got: usize,
    },
    /// On-disk state that violates the format or the store invariants.
    Corrupt(String),
    /// A seal or compaction is already in flight; retry once the
    /// current [`MaintenanceJob`] finishes.
    MaintenanceBusy,
    /// An underlying IO failure.
    Io(io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::DuplicateId(id) => {
                write!(
                    f,
                    "duplicate external id {id} (ids stay reserved until compaction)"
                )
            }
            StoreError::NotFound(id) => write!(f, "external id {id} is not in the collection"),
            StoreError::DimsMismatch { expected, got } => {
                write!(f, "vector has {got} dims, collection has {expected}")
            }
            StoreError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
            StoreError::MaintenanceBusy => {
                write!(f, "a seal or compaction is already in flight")
            }
            StoreError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<StoreError> for io::Error {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}
