//! The mutable collection: write buffer + sealed segments + tombstones,
//! served through [`VectorIndex`] and persisted crash-safely.
//!
//! ## Concurrency model
//!
//! A [`Collection`] is two halves:
//!
//! * an immutable **read view** — one [`Snapshot`] behind an
//!   atomically-swapped `Arc`. Every search clones the `Arc` (readers
//!   never block on writers, writers never wait for readers) and runs
//!   against a frozen, internally consistent state.
//! * a mutex-guarded **writer half** — the WAL, the write buffer, the
//!   segment list, tombstones, and the manifest bookkeeping. Every
//!   mutation ends by publishing a fresh snapshot.
//!
//! Sealing and compaction share one *freeze → build → commit* path: the
//! buffer's rows are frozen under the writer lock (staying searchable
//! as the snapshot's "sealing" section), the new segment is built and
//! written **without** holding the writer lock, and the result commits
//! by swapping the segment set, tombstones, manifest, and WAL
//! generation in one short critical section. Run it inline
//! ([`Collection::seal`]/[`Collection::compact`]) or as a background
//! job on a [`pdx_core::exec`] thread
//! ([`Collection::seal_background`]/[`Collection::compact_background`]);
//! reads keep flowing either way, and writes keep landing in the buffer
//! during a background build.
//!
//! ## Durable commit protocol
//!
//! A maintenance commit makes the *new* state durable before the
//! manifest points at it:
//!
//! 1. the new segment's files are written and fsynced;
//! 2. a fresh WAL generation is created and the rows still buffered in
//!    memory are re-logged into it and fsynced;
//! 3. the manifest — naming the new segment list, tombstones, and WAL
//!    generation — is atomically renamed into place (the commit point);
//! 4. only then are the old WAL generation and replaced segment files
//!    deleted.
//!
//! A failure (or crash) anywhere before step 3 leaves the previous
//! manifest + WAL generation fully intact, so no acknowledged write is
//! ever lost to a failed rotation; the half-created files are orphans
//! that [`Collection::open`] cleans up.

use crate::buffer::{BufChunk, BufferSnapshot};
use crate::manifest::{segment_file, segment_ids_file, wal_file, Manifest};
use crate::snapshot::{SegmentView, Snapshot, TombstoneSet};
use crate::wal::{Wal, WalRecord};
use crate::{Segment, StoreConfig, StoreError, WriteBuffer};
use pdx_core::engine::{SearchOptions, VectorIndex};
use pdx_core::exec::{spawn_job, JobHandle};
use pdx_core::heap::Neighbor;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Where a live external id currently resides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// In the write buffer.
    Buffer,
    /// Frozen by an in-flight seal/compaction (still served from
    /// memory; becomes a segment row at the commit).
    Sealing,
    /// In `segments[i]`.
    Segment(usize),
}

/// Per-segment statistics, as reported by [`Collection::segment_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentStat {
    /// Segment sequence number.
    pub seq: u64,
    /// Deployment kind (`flat-pdx` / `flat-sq8`).
    pub kind: &'static str,
    /// Physical rows (tombstoned ones included).
    pub rows: usize,
    /// Tombstoned rows awaiting compaction.
    pub dead: usize,
}

/// The WAL group-commit policy: when appends are forced to stable
/// storage. Runtime-only (not persisted in the manifest).
///
/// The default (no count, no interval) keeps the store's original
/// semantics: appends are flushed to the OS per record and fsynced only
/// at [`Collection::sync`] and at every seal/compaction commit. Setting
/// `sync_every`/`sync_interval` *bounds the power-loss window* — at
/// most that many acknowledged records (or that much wall-clock time)
/// can be torn away by a power cut, at the cost of periodic fsyncs on
/// the write path. Process crashes lose nothing either way.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupCommit {
    /// Fsync after this many appended records (`0` disables the count
    /// trigger).
    pub sync_every: usize,
    /// Fsync at the first append after this much time since the last
    /// sync (`None` disables the time trigger).
    pub sync_interval: Option<Duration>,
}

/// A handle to one background seal/compaction spawned by
/// [`Collection::seal_background`] / [`Collection::compact_background`].
///
/// Dropping the handle detaches the job; it still commits (or fails)
/// on its own, but its result can no longer be observed.
#[derive(Debug)]
pub struct MaintenanceJob {
    handle: JobHandle<Result<(), StoreError>>,
}

impl MaintenanceJob {
    /// What the job does (`"seal"` or `"compact"`).
    pub fn kind(&self) -> &'static str {
        self.handle.label()
    }

    /// Whether the job has finished (a `wait` will not block).
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }

    /// Blocks until the job commits (or fails) and returns its result.
    pub fn wait(self) -> Result<(), StoreError> {
        self.handle.join()
    }
}

/// Releases the collection's exclusive maintenance claim (and the
/// background-job count) when the holding operation ends, however it
/// ends.
#[derive(Debug)]
struct MaintenanceClaim {
    claimed: Arc<AtomicBool>,
    background: Option<Arc<AtomicUsize>>,
}

impl Drop for MaintenanceClaim {
    fn drop(&mut self) {
        if let Some(jobs) = &self.background {
            jobs.fetch_sub(1, Ordering::AcqRel);
        }
        self.claimed.store(false, Ordering::Release);
    }
}

/// Which maintenance operation a freeze→build→commit cycle performs.
#[derive(Debug, Clone, Copy)]
enum MaintKind {
    /// Seal the frozen buffer rows into one new segment.
    Seal,
    /// Rewrite the frozen buffer rows *and* every sealed segment, minus
    /// the tombstones captured at the freeze, into one new segment.
    Compact,
}

/// Buffer rows frozen by an in-flight seal/compaction: immutable chunks
/// plus the ids deleted since (or before) the freeze. The rows stay
/// searchable from here until the commit swaps them into a segment.
#[derive(Debug)]
struct SealingBuffer {
    chunks: Vec<Arc<BufChunk>>,
    /// Frozen ids that are logically deleted (copy-on-write; shared
    /// with published snapshots).
    dead: Arc<HashSet<u64>>,
    /// Physical rows across `chunks`.
    total: usize,
}

impl SealingBuffer {
    fn view(&self, dims: usize) -> BufferSnapshot {
        BufferSnapshot::from_parts(
            dims,
            self.chunks.clone(),
            Arc::clone(&self.dead),
            self.total - self.dead.len(),
        )
    }
}

/// One frozen maintenance work order: everything the build phase needs
/// without touching the writer lock.
#[derive(Debug)]
struct MaintPlan {
    /// The frozen buffer rows (live at freeze time, minus `dead0`).
    frozen_chunks: Vec<Arc<BufChunk>>,
    /// Frozen ids already deleted *at* the freeze (rows excluded from
    /// the build; left over from an earlier failed commit).
    dead0: HashSet<u64>,
    /// Segments being rewritten (empty for a plain seal).
    segments_in: Vec<Arc<Segment>>,
    /// Tombstones being purged (captured at the freeze).
    t0: TombstoneSet,
    /// Reserved sequence number of the new segment.
    seq: u64,
}

/// The mutex-guarded writer half of a collection.
#[derive(Debug)]
struct Writer {
    buffer: WriteBuffer,
    segments: Vec<Arc<Segment>>,
    /// Tombstoned-row count per segment (parallel to `segments`).
    seg_dead: Vec<usize>,
    /// External ids deleted from sealed segments, filtered at merge
    /// time and purged at compaction.
    tombstones: TombstoneSet,
    /// Live external id → current residence.
    locations: HashMap<u64, Loc>,
    /// Frozen buffer rows of an in-flight (or failed) seal/compaction.
    sealing: Option<SealingBuffer>,
    wal: Option<Wal>,
    wal_seq: u64,
    next_segment_seq: u64,
    group_commit: GroupCommit,
    /// Records appended since the last fsync.
    unsynced: usize,
    last_sync: Instant,
}

impl Writer {
    fn new(dims: usize) -> Self {
        Self {
            buffer: WriteBuffer::new(dims),
            segments: Vec::new(),
            seg_dead: Vec::new(),
            tombstones: TombstoneSet::default(),
            locations: HashMap::new(),
            sealing: None,
            wal: None,
            wal_seq: 0,
            next_segment_seq: 0,
            group_commit: GroupCommit::default(),
            unsynced: 0,
            last_sync: Instant::now(),
        }
    }

    /// Whether `id` is unavailable for insertion: live, tombstoned, or
    /// deleted from an in-flight sealing section (those rows become
    /// tombstones at the commit).
    fn is_reserved(&self, id: u64) -> bool {
        self.locations.contains_key(&id)
            || self.tombstones.contains(id)
            || self.sealing.as_ref().is_some_and(|s| s.dead.contains(&id))
    }

    /// Validation shared by [`Collection::insert`] and WAL replay.
    fn check_insert(&self, id: u64, vector: &[f32]) -> Result<(), StoreError> {
        if vector.len() != self.buffer.dims() {
            return Err(StoreError::DimsMismatch {
                expected: self.buffer.dims(),
                got: vector.len(),
            });
        }
        if self.is_reserved(id) {
            return Err(StoreError::DuplicateId(id));
        }
        Ok(())
    }

    /// Memory-only insert with re-validation (the WAL replay path — a
    /// duplicate in the log is corruption, not a caller bug).
    fn apply_insert(&mut self, id: u64, vector: &[f32]) -> Result<(), StoreError> {
        self.check_insert(id, vector)?;
        self.buffer.append(id, vector)?;
        self.locations.insert(id, Loc::Buffer);
        Ok(())
    }

    /// Memory-only delete (the WAL record is already durable).
    fn apply_delete(&mut self, id: u64) -> Result<(), StoreError> {
        match self.locations.get(&id).copied() {
            None => Err(StoreError::NotFound(id)),
            Some(Loc::Buffer) => {
                self.buffer.remove(id)?;
                self.locations.remove(&id);
                Ok(())
            }
            Some(Loc::Sealing) => {
                let sealing = self
                    .sealing
                    .as_mut()
                    .expect("sealing rows without a freeze");
                Arc::make_mut(&mut sealing.dead).insert(id);
                self.locations.remove(&id);
                Ok(())
            }
            Some(Loc::Segment(si)) => {
                self.tombstones.insert(id);
                self.seg_dead[si] += 1;
                self.locations.remove(&id);
                Ok(())
            }
        }
    }
}

/// An LSM-style mutable vector collection, safe to share across
/// threads.
///
/// Inserts land in an in-memory [`WriteBuffer`] (after a WAL append
/// when persistent) and seal into immutable [`Segment`]s; deletes
/// remove buffered rows in place and tombstone sealed rows; searches
/// run lock-free against the current [`Snapshot`], merging the buffer
/// scan with every segment's PDXearch through the canonical
/// `(distance, id)` order; [`Collection::compact`] rewrites the
/// surviving rows as one fresh segment — inline, or concurrently with
/// reads *and* writes via [`Collection::compact_background`]. See the
/// module docs for the concurrency model and the crate docs for the
/// on-disk layout.
///
/// All mutating operations take `&self` (the writer half is behind a
/// mutex), so one `Arc<Collection>` serves readers and writers alike.
///
/// A deleted external id stays **reserved** until compaction purges its
/// physical row: re-inserting it before then returns
/// [`StoreError::DuplicateId`].
///
/// ```
/// use pdx_store::{Collection, StoreConfig};
/// use pdx_core::engine::{SearchOptions, VectorIndex};
///
/// let coll = Collection::in_memory(2, StoreConfig::default());
/// coll.insert(7, &[0.0, 0.0])?;
/// coll.insert(9, &[1.0, 0.0])?;
/// let hits = coll.search(&[0.1, 0.0], &SearchOptions::new(1));
/// assert_eq!(hits[0].id, 7);
/// coll.delete(7)?;
/// let hits = coll.search(&[0.1, 0.0], &SearchOptions::new(1));
/// assert_eq!(hits[0].id, 9);
/// # Ok::<(), pdx_store::StoreError>(())
/// ```
#[derive(Debug)]
pub struct Collection {
    dims: usize,
    config: StoreConfig,
    /// Persistence root; `None` for an in-memory collection.
    dir: Option<PathBuf>,
    /// The current read view; swapped atomically at every publication.
    view: RwLock<Arc<Snapshot>>,
    writer: Mutex<Writer>,
    /// Exclusive seal/compaction claim (one maintenance op at a time).
    claim: Arc<AtomicBool>,
    /// Background maintenance jobs currently in flight.
    background_jobs: Arc<AtomicUsize>,
    /// Buffer-row / tombstone counts last reported into the global
    /// gauges; each publish adjusts by the delta (and `Drop` retracts
    /// the rest), so several live collections sum correctly.
    obs_buffer_rows: AtomicU64,
    obs_tombstones: AtomicU64,
}

impl Collection {
    /// A purely in-memory collection (no directory, no WAL): the same
    /// semantics without durability, for tests and benchmarks.
    ///
    /// # Panics
    /// Panics if `dims == 0` or the config has a zero knob.
    pub fn in_memory(dims: usize, config: StoreConfig) -> Self {
        assert!(dims > 0, "dims must be positive");
        assert!(
            config.block_size > 0 && config.group_size > 0 && config.buffer_capacity > 0,
            "config knobs must be positive"
        );
        Self::assemble(dims, config, None, Writer::new(dims))
    }

    fn assemble(dims: usize, config: StoreConfig, dir: Option<PathBuf>, writer: Writer) -> Self {
        let initial = Arc::new(Self::snapshot_of(dims, &writer));
        Self {
            dims,
            config,
            dir,
            view: RwLock::new(initial),
            writer: Mutex::new(writer),
            claim: Arc::new(AtomicBool::new(false)),
            background_jobs: Arc::new(AtomicUsize::new(0)),
            obs_buffer_rows: AtomicU64::new(0),
            obs_tombstones: AtomicU64::new(0),
        }
    }

    /// Creates a new persistent collection in `dir` (created if
    /// missing), writing the initial manifest and WAL.
    ///
    /// # Errors
    /// `AlreadyExists` if `dir` already holds a manifest; IO errors are
    /// propagated.
    pub fn create(
        dir: impl AsRef<Path>,
        dims: usize,
        config: StoreConfig,
    ) -> Result<Self, StoreError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        if Manifest::path(dir).exists() {
            return Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!("{}: collection already exists", dir.display()),
            )));
        }
        let mut coll = Self::in_memory(dims, config);
        {
            let mut w = coll.writer.lock().expect("writer lock");
            Self::manifest_of(dims, config, &w).write_atomic(dir)?;
            w.wal = Some(Wal::create(&dir.join(wal_file(0)), dims)?);
        }
        coll.dir = Some(dir.to_path_buf());
        Ok(coll)
    }

    /// Opens a persistent collection: loads the manifest and segments,
    /// applies the tombstones, cleans up orphaned files (segments or
    /// WAL generations a failed commit left behind), and replays the
    /// WAL (with torn-tail truncation) to rebuild the write buffer.
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] on invariant violations (a tombstone for
    /// an unknown id, a replayed duplicate insert, a mismatched remap
    /// table); IO and format errors are propagated.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref();
        let manifest = Manifest::read(dir)?;
        clean_orphans(dir, &manifest);
        let mut w = Writer::new(manifest.dims);
        w.wal_seq = manifest.wal_seq;
        w.next_segment_seq = manifest.next_segment_seq;
        for &seq in &manifest.segments {
            let segment = Segment::load(dir, seq, manifest.dims)?;
            let si = w.segments.len();
            for &ext in segment.remap() {
                if w.locations.insert(ext, Loc::Segment(si)).is_some() {
                    return Err(StoreError::Corrupt(format!(
                        "external id {ext} appears in two segments"
                    )));
                }
            }
            w.segments.push(Arc::new(segment));
            w.seg_dead.push(0);
        }
        for &id in &manifest.tombstones {
            match w.locations.remove(&id) {
                Some(Loc::Segment(si)) => {
                    w.seg_dead[si] += 1;
                    w.tombstones.insert(id);
                }
                _ => {
                    return Err(StoreError::Corrupt(format!(
                        "tombstone for id {id} which no segment holds"
                    )))
                }
            }
        }
        let (wal, records) = Wal::open(&dir.join(wal_file(manifest.wal_seq)), manifest.dims)?;
        for record in records {
            // Replay mutates memory only — the records are already
            // durable — and surfaces violations as corruption.
            let replayed = match record {
                WalRecord::Insert { id, vector } => w.apply_insert(id, &vector),
                WalRecord::Delete { id } => w.apply_delete(id),
            };
            replayed.map_err(|e| StoreError::Corrupt(format!("wal replay: {e}")))?;
        }
        w.wal = Some(wal);
        Ok(Self::assemble(
            manifest.dims,
            manifest.config,
            Some(dir.to_path_buf()),
            w,
        ))
    }

    /// Dimensionality of the collection.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The store configuration fixed at creation.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The current read view: an immutable, internally consistent
    /// snapshot that stays searchable (and bit-stable) no matter what
    /// the writer does afterwards. Every `Collection` search is
    /// `self.snapshot()` + the snapshot's search; take one explicitly
    /// to pin a whole multi-query session to one state.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.view.read().expect("view lock"))
    }

    /// Publishes the writer's current state as the new read view.
    fn publish(&self, w: &Writer) {
        let snap = Arc::new(Self::snapshot_of(self.dims, w));
        *self.view.write().expect("view lock") = snap;
        self.sync_state_gauges(w);
    }

    /// Reconciles the global buffer/tombstone gauges with this
    /// collection's counts. Delta-based (each collection adjusts by
    /// what changed since its last report), so several live
    /// collections sum correctly; callers hold the writer lock, so
    /// per-collection reports are serialized.
    fn sync_state_gauges(&self, w: &Writer) {
        let m = crate::obs::state_metrics();
        let sealing = w.sealing.as_ref().map_or(0, |s| s.total - s.dead.len());
        let buffer = (w.buffer.len() + sealing) as u64;
        let tombstones = w.tombstones.len() as u64;
        let prev_b = self.obs_buffer_rows.swap(buffer, Ordering::Relaxed);
        let prev_t = self.obs_tombstones.swap(tombstones, Ordering::Relaxed);
        if buffer >= prev_b {
            m.buffer_rows.add(buffer - prev_b);
        } else {
            m.buffer_rows.sub(prev_b - buffer);
        }
        if tombstones >= prev_t {
            m.tombstones.add(tombstones - prev_t);
        } else {
            m.tombstones.sub(prev_t - tombstones);
        }
    }

    fn snapshot_of(dims: usize, w: &Writer) -> Snapshot {
        Snapshot::new(
            dims,
            w.segments
                .iter()
                .zip(&w.seg_dead)
                .map(|(segment, &dead)| SegmentView {
                    segment: Arc::clone(segment),
                    dead,
                })
                .collect(),
            w.tombstones.clone(),
            w.sealing.as_ref().map(|s| s.view(dims)),
            w.buffer.snapshot(),
            w.locations.len(),
        )
    }

    fn manifest_of(dims: usize, config: StoreConfig, w: &Writer) -> Manifest {
        Manifest {
            dims,
            config,
            wal_seq: w.wal_seq,
            next_segment_seq: w.next_segment_seq,
            segments: w.segments.iter().map(|s| s.seq()).collect(),
            tombstones: w.tombstones.to_sorted_vec(),
        }
    }

    fn lock_writer(&self) -> std::sync::MutexGuard<'_, Writer> {
        self.writer.lock().expect("writer lock")
    }

    /// Number of live (inserted and not deleted) vectors.
    pub fn live_len(&self) -> usize {
        self.snapshot().live_len()
    }

    /// Number of vectors currently buffered in memory (the write buffer
    /// plus any rows frozen by an in-flight seal/compaction).
    pub fn buffer_len(&self) -> usize {
        let w = self.lock_writer();
        let sealing = w.sealing.as_ref().map_or(0, |s| s.total - s.dead.len());
        w.buffer.len() + sealing
    }

    /// Number of sealed segments.
    pub fn segment_count(&self) -> usize {
        self.lock_writer().segments.len()
    }

    /// Number of tombstoned (deleted but not yet compacted) rows.
    pub fn tombstone_count(&self) -> usize {
        self.lock_writer().tombstones.len()
    }

    /// Whether the collection persists to a directory.
    pub fn is_persistent(&self) -> bool {
        self.dir.is_some()
    }

    /// Current WAL generation (persistent collections).
    pub fn wal_seq(&self) -> u64 {
        self.lock_writer().wal_seq
    }

    /// Bytes of the current WAL generation known to be on stable
    /// storage (what a power loss is guaranteed to preserve). `0` for
    /// in-memory collections.
    pub fn wal_synced_len(&self) -> u64 {
        self.lock_writer()
            .wal
            .as_ref()
            .map_or(0, |w| w.synced_len())
    }

    /// Bytes appended to the current WAL generation (flushed to the OS;
    /// the span past [`Collection::wal_synced_len`] is what a power
    /// loss may tear). `0` for in-memory collections.
    pub fn wal_appended_len(&self) -> u64 {
        self.lock_writer()
            .wal
            .as_ref()
            .map_or(0, |w| w.appended_len())
    }

    /// The WAL group-commit policy.
    pub fn group_commit(&self) -> GroupCommit {
        self.lock_writer().group_commit
    }

    /// Replaces the WAL group-commit policy (runtime-only; not
    /// persisted). See [`GroupCommit`] for the durability trade-off.
    pub fn set_group_commit(&self, policy: GroupCommit) {
        self.lock_writer().group_commit = policy;
    }

    /// Number of background maintenance jobs currently in flight
    /// (`0` or `1`: seals and compactions are mutually exclusive).
    pub fn maintenance_in_flight(&self) -> usize {
        self.background_jobs.load(Ordering::Acquire)
    }

    /// Per-segment statistics in storage order.
    pub fn segment_stats(&self) -> Vec<SegmentStat> {
        let w = self.lock_writer();
        w.segments
            .iter()
            .zip(&w.seg_dead)
            .map(|(s, &dead)| SegmentStat {
                seq: s.seq(),
                kind: s.kind(),
                rows: s.len(),
                dead,
            })
            .collect()
    }

    /// The largest external id ever observed (live or tombstoned), or
    /// `None` for a collection that never held a row.
    pub fn max_id(&self) -> Option<u64> {
        let w = self.lock_writer();
        let live = w.locations.keys().max().copied();
        let dead = w.tombstones.iter().max();
        let sealing_dead = w
            .sealing
            .as_ref()
            .and_then(|s| s.dead.iter().max().copied());
        live.max(dead).max(sealing_dead)
    }

    /// Whether `id` is live (searchable) in the collection.
    pub fn contains(&self, id: u64) -> bool {
        self.lock_writer().locations.contains_key(&id)
    }

    /// Whether `id` is unavailable for insertion: live, or tombstoned
    /// (deleted ids stay reserved until [`Collection::compact`]).
    pub fn is_id_reserved(&self, id: u64) -> bool {
        self.lock_writer().is_reserved(id)
    }

    /// Inserts one vector under an external id: WAL append first, then
    /// the write buffer; seals automatically when the buffer reaches
    /// its configured capacity (skipped — the buffer keeps growing —
    /// while a background job holds the maintenance claim).
    ///
    /// # Errors
    /// [`StoreError::DimsMismatch`], [`StoreError::DuplicateId`] (also
    /// for tombstoned ids — reserved until compaction), or an IO error.
    /// An IO error from the *automatic seal* (or a group-commit fsync)
    /// is reported here, but the insert itself is already WAL-committed
    /// and applied at that point — the collection stays consistent and
    /// the seal retries on the next trigger.
    pub fn insert(&self, id: u64, vector: &[f32]) -> Result<(), StoreError> {
        let mut w = self.lock_writer();
        w.check_insert(id, vector)?;
        if let Some(wal) = &mut w.wal {
            wal.append(&WalRecord::Insert {
                id,
                vector: vector.to_vec(),
            })?;
        }
        w.buffer.append(id, vector)?;
        w.locations.insert(id, Loc::Buffer);
        self.publish(&w);
        Self::group_commit_tick(&mut w)?;
        if w.buffer.len() >= self.config.buffer_capacity {
            if let Some(_claim) = self.try_claim(false) {
                self.maintain_locked(&mut w, MaintKind::Seal)?;
            }
        }
        Ok(())
    }

    /// Bulk-loads `rows` under consecutive ids `first_id..first_id + n`,
    /// **bypassing the WAL**: rows become durable at the automatic
    /// seals (the segment + manifest commit), and the call ends with a
    /// seal, so on success everything is durable. The whole id range is
    /// validated before anything is applied. This is the build path —
    /// logging a bulk load record-by-record only to delete the log at
    /// the next seal would double its IO for nothing.
    ///
    /// # Errors
    /// [`StoreError::MaintenanceBusy`] if a background job is in
    /// flight (the load needs the seal path for durability);
    /// [`StoreError::DimsMismatch`] / [`StoreError::DuplicateId`]
    /// before anything is applied; or an IO error from a seal — on an
    /// IO error (or a crash mid-call) rows after the last committed
    /// seal are lost, consistent with "the manifest is the commit
    /// point".
    pub fn bulk_insert(&self, first_id: u64, rows: &[f32]) -> Result<(), StoreError> {
        if rows.len() % self.dims != 0 {
            return Err(StoreError::DimsMismatch {
                expected: self.dims,
                got: rows.len(),
            });
        }
        let _claim = self.try_claim(false).ok_or(StoreError::MaintenanceBusy)?;
        let mut w = self.lock_writer();
        let n = rows.len() / self.dims;
        for i in 0..n {
            let id = first_id + i as u64;
            if w.is_reserved(id) {
                return Err(StoreError::DuplicateId(id));
            }
        }
        for i in 0..n {
            let id = first_id + i as u64;
            w.buffer
                .append(id, &rows[i * self.dims..(i + 1) * self.dims])?;
            w.locations.insert(id, Loc::Buffer);
            if w.buffer.len() >= self.config.buffer_capacity {
                self.maintain_locked(&mut w, MaintKind::Seal)?;
            }
        }
        self.maintain_locked(&mut w, MaintKind::Seal)?;
        self.publish(&w);
        Ok(())
    }

    /// Deletes an external id: a buffered row is removed in place, a
    /// sealed row is tombstoned (filtered from every search, purged at
    /// compaction).
    ///
    /// # Errors
    /// [`StoreError::NotFound`] if the id is not live, or an IO error.
    pub fn delete(&self, id: u64) -> Result<(), StoreError> {
        let mut w = self.lock_writer();
        if !w.locations.contains_key(&id) {
            return Err(StoreError::NotFound(id));
        }
        if let Some(wal) = &mut w.wal {
            wal.append(&WalRecord::Delete { id })?;
        }
        w.apply_delete(id)?;
        self.publish(&w);
        Self::group_commit_tick(&mut w)?;
        Ok(())
    }

    /// Counts an appended record against the group-commit policy and
    /// fsyncs when a trigger fires.
    fn group_commit_tick(w: &mut Writer) -> Result<(), StoreError> {
        if w.wal.is_none() {
            return Ok(());
        }
        w.unsynced += 1;
        let policy = w.group_commit;
        let by_count = policy.sync_every > 0 && w.unsynced >= policy.sync_every;
        let by_time = policy
            .sync_interval
            .is_some_and(|interval| w.last_sync.elapsed() >= interval);
        if by_count || by_time {
            if let Some(wal) = &mut w.wal {
                wal.sync()?;
            }
            crate::obs::wal_metrics().batch.record(w.unsynced as u64);
            w.unsynced = 0;
            w.last_sync = Instant::now();
        }
        Ok(())
    }

    /// Takes the exclusive maintenance claim, or `None` if a
    /// seal/compaction is already in flight.
    fn try_claim(&self, background: bool) -> Option<MaintenanceClaim> {
        if self
            .claim
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return None;
        }
        let background = background.then(|| {
            self.background_jobs.fetch_add(1, Ordering::AcqRel);
            Arc::clone(&self.background_jobs)
        });
        Some(MaintenanceClaim {
            claimed: Arc::clone(&self.claim),
            background,
        })
    }

    /// Seals the write buffer into a new immutable segment (no-op when
    /// the buffer is empty). Persistent collections write the segment
    /// files and commit via the durable protocol in the module docs.
    ///
    /// # Errors
    /// [`StoreError::MaintenanceBusy`] if a background job is in
    /// flight; IO errors are propagated — a failed commit leaves the
    /// previous durable state fully intact, keeps the frozen rows
    /// searchable, and the next seal retries them.
    pub fn seal(&self) -> Result<(), StoreError> {
        let _claim = self.try_claim(false).ok_or(StoreError::MaintenanceBusy)?;
        let mut w = self.lock_writer();
        self.maintain_locked(&mut w, MaintKind::Seal)
    }

    /// Merges every segment and the write buffer, purges tombstoned
    /// rows, and rewrites the surviving rows — sorted by external id —
    /// as one freshly partitioned segment. Afterwards searches are
    /// bit-identical to a fresh flat build over the surviving rows, and
    /// all tombstoned ids become reusable.
    ///
    /// Blocks writers for the duration (readers keep the old view); use
    /// [`Collection::compact_background`] to rebuild off to the side.
    ///
    /// # Errors
    /// [`StoreError::MaintenanceBusy`] if a background job is in
    /// flight; IO errors are propagated (the previous durable state
    /// stays intact on failure).
    pub fn compact(&self) -> Result<(), StoreError> {
        let _claim = self.try_claim(false).ok_or(StoreError::MaintenanceBusy)?;
        let mut w = self.lock_writer();
        self.maintain_locked(&mut w, MaintKind::Compact)
    }

    /// Starts a background seal: freezes the buffer (a brief writer
    /// lock), then builds and commits the segment on a
    /// [`pdx_core::exec`] job thread. Reads and writes keep flowing;
    /// the frozen rows stay searchable throughout.
    ///
    /// # Errors
    /// [`StoreError::MaintenanceBusy`] if a job is already in flight.
    pub fn seal_background(self: &Arc<Self>) -> Result<MaintenanceJob, StoreError> {
        self.spawn_maintenance(MaintKind::Seal)
    }

    /// Starts a background compaction: captures the segment set +
    /// tombstones and freezes the buffer (a brief writer lock), builds
    /// the merged segment off to the side, and commits by atomically
    /// swapping the segment set, manifest, and WAL generation. Searches
    /// issued at any point return results bit-identical to the
    /// pre-commit or post-commit snapshot (whichever was current);
    /// inserts and deletes keep landing concurrently and survive the
    /// commit.
    ///
    /// # Errors
    /// [`StoreError::MaintenanceBusy`] if a job is already in flight.
    pub fn compact_background(self: &Arc<Self>) -> Result<MaintenanceJob, StoreError> {
        self.spawn_maintenance(MaintKind::Compact)
    }

    fn spawn_maintenance(self: &Arc<Self>, kind: MaintKind) -> Result<MaintenanceJob, StoreError> {
        let claim = self.try_claim(true).ok_or(StoreError::MaintenanceBusy)?;
        let this = Arc::clone(self);
        let label = match kind {
            MaintKind::Seal => "seal",
            MaintKind::Compact => "compact",
        };
        let handle = spawn_job(label, move || {
            let _claim = claim;
            this.maintain_background(kind)
        });
        Ok(MaintenanceJob { handle })
    }

    /// The whole freeze→build→commit cycle under one writer lock (the
    /// inline seal/compact path; writers block, readers do not).
    /// Callers must hold the maintenance claim.
    fn maintain_locked(&self, w: &mut Writer, kind: MaintKind) -> Result<(), StoreError> {
        let t0 = Instant::now();
        let Some(plan) = self.plan_maintenance(w, kind) else {
            return Ok(());
        };
        let built = self.build_maintenance(&plan)?;
        Self::record_maintenance(kind, &built, self.dims);
        let out = self.commit_maintenance(w, &plan, built);
        Self::maint_metrics_of(kind)
            .duration_us
            .record(t0.elapsed().as_micros() as u64);
        out
    }

    /// The background variant: the writer lock is held only for the
    /// freeze and the commit, not the build.
    fn maintain_background(&self, kind: MaintKind) -> Result<(), StoreError> {
        let t0 = Instant::now();
        let plan = {
            let mut w = self.lock_writer();
            match self.plan_maintenance(&mut w, kind) {
                Some(plan) => plan,
                None => return Ok(()),
            }
        };
        let built = self.build_maintenance(&plan)?;
        Self::record_maintenance(kind, &built, self.dims);
        let mut w = self.lock_writer();
        let out = self.commit_maintenance(&mut w, &plan, built);
        Self::maint_metrics_of(kind)
            .duration_us
            .record(t0.elapsed().as_micros() as u64);
        out
    }

    fn maint_metrics_of(kind: MaintKind) -> &'static crate::obs::MaintMetrics {
        match kind {
            MaintKind::Seal => crate::obs::seal_metrics(),
            MaintKind::Compact => crate::obs::compact_metrics(),
        }
    }

    /// Charges the new segment's payload (rows + id remap) to the
    /// phase's bytes-rewritten counter.
    fn record_maintenance(kind: MaintKind, built: &Option<Arc<Segment>>, dims: usize) {
        if let Some(segment) = built {
            let bytes = (segment.len() * dims * 4 + segment.len() * 8) as u64;
            Self::maint_metrics_of(kind).bytes_rewritten.add(bytes);
        }
    }

    /// Freeze phase: moves the buffer's live rows (plus any leftovers
    /// of an earlier failed commit) into the sealing section — still
    /// searchable, no longer accepting rows — and captures what the
    /// build needs. Returns `None` when a seal has nothing to do.
    fn plan_maintenance(&self, w: &mut Writer, kind: MaintKind) -> Option<MaintPlan> {
        let (mut chunks, dead_arc) = match w.sealing.take() {
            Some(s) => (s.chunks, s.dead),
            None => (Vec::new(), Arc::new(HashSet::new())),
        };
        let dead0: HashSet<u64> = (*dead_arc).clone();
        chunks.extend(w.buffer.freeze());
        let total: usize = chunks.iter().map(|c| c.ids.len()).sum();
        if total == 0 && matches!(kind, MaintKind::Seal) {
            return None;
        }
        for chunk in &chunks {
            for &id in &chunk.ids {
                if !dead0.contains(&id) {
                    w.locations.insert(id, Loc::Sealing);
                }
            }
        }
        w.sealing = Some(SealingBuffer {
            chunks: chunks.clone(),
            dead: dead_arc,
            total,
        });
        let (segments_in, t0) = match kind {
            MaintKind::Seal => (Vec::new(), TombstoneSet::default()),
            MaintKind::Compact => (w.segments.clone(), w.tombstones.clone()),
        };
        let seq = w.next_segment_seq;
        w.next_segment_seq += 1;
        self.publish(w);
        Some(MaintPlan {
            frozen_chunks: chunks,
            dead0,
            segments_in,
            t0,
            seq,
        })
    }

    /// Build phase: assembles the survivor rows — the plan's segments
    /// minus the captured tombstones, plus the frozen buffer rows —
    /// sorted by external id, seals them into one segment, and writes
    /// its files. Touches no shared state: safe off the writer lock.
    fn build_maintenance(&self, plan: &MaintPlan) -> Result<Option<Arc<Segment>>, StoreError> {
        let t0 = plan.t0.to_hashset();
        let mut all_ids: Vec<u64> = Vec::new();
        let mut all_rows: Vec<f32> = Vec::new();
        for segment in &plan.segments_in {
            let (ids, rows) = segment.live_rows(&t0);
            all_ids.extend_from_slice(&ids);
            all_rows.extend_from_slice(&rows);
        }
        for chunk in &plan.frozen_chunks {
            for (pos, &id) in chunk.ids.iter().enumerate() {
                if !plan.dead0.contains(&id) {
                    all_ids.push(id);
                    all_rows.extend_from_slice(chunk.row(pos, self.dims));
                }
            }
        }
        if all_ids.is_empty() {
            return Ok(None);
        }
        // Global external-id order (each source is sorted or nearly so,
        // but sources interleave).
        let mut order: Vec<usize> = (0..all_ids.len()).collect();
        order.sort_unstable_by_key(|&i| all_ids[i]);
        let ids: Vec<u64> = order.iter().map(|&i| all_ids[i]).collect();
        let mut rows = Vec::with_capacity(all_rows.len());
        for &i in &order {
            rows.extend_from_slice(&all_rows[i * self.dims..(i + 1) * self.dims]);
        }
        let segment = Arc::new(Segment::seal(
            plan.seq,
            ids,
            &rows,
            self.dims,
            &self.config,
        )?);
        if let Some(dir) = &self.dir {
            segment.write(dir)?;
        }
        Ok(Some(segment))
    }

    /// Commit phase: swaps the new segment in for the plan's inputs,
    /// reconciles tombstones and locations with everything that changed
    /// during the build, commits durably (fresh WAL generation with the
    /// still-buffered rows re-logged, then the manifest rename), and
    /// publishes the new view. On error the previous durable state and
    /// the sealing section survive untouched.
    fn commit_maintenance(
        &self,
        w: &mut Writer,
        plan: &MaintPlan,
        built: Option<Arc<Segment>>,
    ) -> Result<(), StoreError> {
        let dead_now: HashSet<u64> = w
            .sealing
            .as_ref()
            .map(|s| (*s.dead).clone())
            .unwrap_or_default();
        // Tombstones after the commit: everything deleted since the
        // freeze (the plan's captured set is purged), plus frozen rows
        // deleted mid-build — their physical rows are in `built`.
        let mut tombstones = w.tombstones.subtract(&plan.t0);
        for &id in dead_now.difference(&plan.dead0) {
            tombstones.insert(id);
        }
        // The claim is exclusive, so no other seal ran since the
        // freeze: the writer's segment list still starts with the
        // plan's inputs (all of them for a compaction, none for a
        // plain seal).
        debug_assert!(
            w.segments
                .iter()
                .zip(&plan.segments_in)
                .all(|(a, b)| a.seq() == b.seq())
                && w.segments.len() >= plan.segments_in.len()
        );
        let mut segments: Vec<Arc<Segment>> = w.segments[plan.segments_in.len()..].to_vec();
        if let Some(segment) = built {
            segments.push(segment);
        }
        if let Some(dir) = &self.dir {
            let wal = commit_durable(
                dir,
                self.dims,
                self.config,
                w.wal_seq + 1,
                w.next_segment_seq,
                segments.iter().map(|s| s.seq()).collect(),
                tombstones.to_sorted_vec(),
                &w.buffer,
            )?;
            let old = w.wal.replace(wal);
            w.wal_seq += 1;
            w.unsynced = 0;
            w.last_sync = Instant::now();
            if let Some(old) = old {
                std::fs::remove_file(old.path()).ok();
            }
            for segment in &plan.segments_in {
                Segment::remove_files(dir, segment.seq());
            }
        }
        // Rebuild the derived state against the new segment list.
        let buffered: Vec<u64> = w
            .locations
            .iter()
            .filter(|(_, loc)| matches!(loc, Loc::Buffer))
            .map(|(&id, _)| id)
            .collect();
        w.segments = segments;
        w.seg_dead = w
            .segments
            .iter()
            .map(|s| {
                s.remap()
                    .iter()
                    .filter(|&&id| tombstones.contains(id))
                    .count()
            })
            .collect();
        w.locations.clear();
        for (si, segment) in w.segments.iter().enumerate() {
            for &id in segment.remap() {
                if !tombstones.contains(id) {
                    w.locations.insert(id, Loc::Segment(si));
                }
            }
        }
        for id in buffered {
            w.locations.insert(id, Loc::Buffer);
        }
        w.tombstones = tombstones;
        w.sealing = None;
        self.publish(w);
        Ok(())
    }

    /// Forces WAL records to stable storage (appends are flushed to the
    /// OS per operation, synced to the device here — or periodically,
    /// see [`Collection::set_group_commit`]).
    ///
    /// # Errors
    /// Propagates IO errors.
    pub fn sync(&self) -> Result<(), StoreError> {
        let mut w = self.lock_writer();
        if let Some(wal) = &mut w.wal {
            wal.sync()?;
            w.unsynced = 0;
            w.last_sync = Instant::now();
        }
        Ok(())
    }
}

/// Creates the commit's fresh WAL generation — re-logging the rows that
/// remain buffered in memory, fsynced — and then renames the manifest
/// into place (the commit point). On any failure the new generation is
/// removed and the previous manifest + WAL stay authoritative, so a
/// failed rotation can never divert acknowledged writes into a log that
/// recovery would not read.
#[allow(clippy::too_many_arguments)]
fn commit_durable(
    dir: &Path,
    dims: usize,
    config: StoreConfig,
    new_wal_seq: u64,
    next_segment_seq: u64,
    segment_seqs: Vec<u64>,
    tombstones: Vec<u64>,
    relog: &WriteBuffer,
) -> Result<Wal, StoreError> {
    let wal_path = dir.join(wal_file(new_wal_seq));
    let result = (|| {
        let mut wal = Wal::create(&wal_path, dims)?;
        for (id, row) in relog.live_entries() {
            wal.append(&WalRecord::Insert {
                id,
                vector: row.to_vec(),
            })?;
        }
        wal.sync()?;
        let manifest = Manifest {
            dims,
            config,
            wal_seq: new_wal_seq,
            next_segment_seq,
            segments: segment_seqs,
            tombstones,
        };
        manifest.write_atomic(dir)?;
        Ok(wal)
    })();
    if result.is_err() {
        std::fs::remove_file(&wal_path).ok();
    }
    result
}

/// Deletes files in `dir` that match the store's naming scheme but are
/// unreachable from `manifest`: segments a failed commit wrote before
/// its manifest rename, superseded or half-created WAL generations, and
/// a stranded `MANIFEST.tmp`. Only files the store itself would have
/// created are touched.
fn clean_orphans(dir: &Path, manifest: &Manifest) {
    let keep_segments: HashSet<u64> = manifest.segments.iter().copied().collect();
    let keep_wal = wal_file(manifest.wal_seq);
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let orphan = if name == "MANIFEST.tmp" {
            true
        } else if let Some(seq) = parse_seq(name, "seg-", ".pdx") {
            !keep_segments.contains(&seq) && name == segment_file(seq)
        } else if let Some(seq) = parse_seq(name, "seg-", ".ids") {
            !keep_segments.contains(&seq) && name == segment_ids_file(seq)
        } else if parse_seq(name, "wal-", ".log").is_some() {
            name != keep_wal
        } else {
            false
        };
        if orphan {
            std::fs::remove_file(entry.path()).ok();
        }
    }
}

/// Parses the sequence number out of a `<prefix><seq><suffix>` file
/// name.
fn parse_seq(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

impl Drop for Collection {
    /// Retracts this collection's share of the global buffer/tombstone
    /// gauges, so dropped collections (tests, closed shards) don't
    /// leave phantom rows behind.
    fn drop(&mut self) {
        let m = crate::obs::state_metrics();
        m.buffer_rows
            .sub(self.obs_buffer_rows.load(Ordering::Relaxed));
        m.tombstones
            .sub(self.obs_tombstones.load(Ordering::Relaxed));
    }
}

impl VectorIndex for Collection {
    fn dims(&self) -> usize {
        self.dims
    }

    fn len(&self) -> usize {
        self.snapshot().live_len()
    }

    fn kind(&self) -> &'static str {
        "collection"
    }

    /// A lock-free snapshot read: clones the current view's `Arc` and
    /// runs the canonical merged search against it (see
    /// [`Snapshot::search`](crate::Snapshot)); bit-identical to the
    /// single-owner sequential semantics at the moment the view was
    /// published.
    fn search(&self, query: &[f32], opts: &SearchOptions) -> Vec<Neighbor> {
        self.snapshot().search(query, opts)
    }

    /// Pins one snapshot for the whole batch, so every query in it
    /// answers against the same state even while writers land.
    fn search_batch(&self, queries: &[f32], opts: &SearchOptions) -> Vec<Vec<Neighbor>> {
        self.snapshot().search_batch(queries, opts)
    }

    /// Intra-query parallelism over one pinned snapshot: bit-identical
    /// to [`VectorIndex::search`] at any thread count.
    fn search_parallel(&self, query: &[f32], opts: &SearchOptions) -> Vec<Neighbor> {
        self.snapshot().search_parallel(query, opts)
    }

    /// Approximate payload footprint: live vectors × (per-dimension
    /// scan bytes + 8-byte id). Quantized collections also keep the
    /// `f32` rerank rows resident.
    fn resident_bytes(&self) -> u64 {
        let live = self.snapshot().live_len() as u64;
        let per_row = if self.config().quantize {
            // u8 codes + f32 rerank row
            self.dims as u64 * 5
        } else {
            self.dims as u64 * 4
        };
        live * (per_row + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdx_core::engine::SearchOptions;

    fn small_config() -> StoreConfig {
        StoreConfig {
            block_size: 16,
            group_size: 8,
            buffer_capacity: 32,
            quantize: false,
        }
    }

    fn ids_of(hits: &[Neighbor]) -> Vec<u64> {
        hits.iter().map(|n| n.id).collect()
    }

    #[test]
    fn insert_search_delete_in_memory() {
        let coll = Collection::in_memory(2, small_config());
        for i in 0..10u64 {
            coll.insert(i, &[i as f32, 0.0]).unwrap();
        }
        assert_eq!(coll.live_len(), 10);
        let hits = coll.search(&[0.0, 0.0], &SearchOptions::new(3));
        assert_eq!(ids_of(&hits), vec![0, 1, 2]);

        coll.delete(1).unwrap();
        let hits = coll.search(&[0.0, 0.0], &SearchOptions::new(3));
        assert_eq!(ids_of(&hits), vec![0, 2, 3]);
        assert!(matches!(coll.delete(1), Err(StoreError::NotFound(1))));
        assert!(matches!(
            coll.insert(0, &[9.0, 9.0]),
            Err(StoreError::DuplicateId(0))
        ));
    }

    #[test]
    fn auto_seal_keeps_results_and_reserves_tombstoned_ids() {
        let coll = Collection::in_memory(2, small_config());
        for i in 0..80u64 {
            coll.insert(i, &[i as f32, 0.0]).unwrap();
        }
        // capacity 32: two seals happened, a partial buffer remains.
        assert_eq!(coll.segment_count(), 2);
        assert_eq!(coll.buffer_len(), 80 - 64);
        let hits = coll.search(&[5.0, 0.0], &SearchOptions::new(3));
        assert_eq!(ids_of(&hits), vec![5, 4, 6]);

        // Delete a sealed row: tombstoned, filtered, id reserved.
        coll.delete(5).unwrap();
        assert_eq!(coll.tombstone_count(), 1);
        let hits = coll.search(&[5.0, 0.0], &SearchOptions::new(3));
        assert_eq!(ids_of(&hits), vec![4, 6, 3]);
        assert!(matches!(
            coll.insert(5, &[5.0, 0.0]),
            Err(StoreError::DuplicateId(5))
        ));

        // Compaction purges the row and frees the id.
        coll.compact().unwrap();
        assert_eq!(coll.segment_count(), 1);
        assert_eq!(coll.tombstone_count(), 0);
        assert_eq!(coll.live_len(), 79);
        coll.insert(5, &[5.0, 0.0]).unwrap();
        let hits = coll.search(&[5.0, 0.0], &SearchOptions::new(1));
        assert_eq!(ids_of(&hits), vec![5]);
    }

    #[test]
    fn bulk_insert_matches_the_insert_loop_and_validates_up_front() {
        let rows: Vec<f32> = (0..200).map(|i| i as f32).collect(); // 100 × 2
        let a = Collection::in_memory(2, small_config());
        a.bulk_insert(10, &rows).unwrap();
        assert_eq!(a.buffer_len(), 0, "bulk load ends sealed");
        let b = Collection::in_memory(2, small_config());
        for i in 0..100 {
            b.insert(10 + i as u64, &rows[i * 2..(i + 1) * 2]).unwrap();
        }
        b.seal().unwrap();
        let opts = SearchOptions::new(5);
        assert_eq!(a.search(&[3.0, 4.0], &opts), b.search(&[3.0, 4.0], &opts));

        // A conflict anywhere in the range aborts before anything lands.
        let err = a.bulk_insert(105, &rows[..4]).unwrap_err();
        assert!(matches!(err, StoreError::DuplicateId(105)));
        assert_eq!(a.live_len(), 100);
        assert!(matches!(
            a.bulk_insert(500, &rows[..3]),
            Err(StoreError::DimsMismatch { .. })
        ));
    }

    #[test]
    fn compact_of_empty_collection_is_fine() {
        let coll = Collection::in_memory(3, small_config());
        coll.compact().unwrap();
        assert_eq!(coll.live_len(), 0);
        coll.insert(1, &[0.0; 3]).unwrap();
        coll.delete(1).unwrap();
        coll.compact().unwrap();
        assert_eq!(coll.segment_count(), 0);
        assert!(coll.search(&[0.0; 3], &SearchOptions::new(1)).is_empty());
    }

    #[test]
    fn quantized_collection_reranks_exactly() {
        let coll = Collection::in_memory(
            4,
            StoreConfig {
                quantize: true,
                ..small_config()
            },
        );
        for i in 0..60u64 {
            let x = i as f32 * 0.25;
            coll.insert(i, &[x, -x, x * 0.5, 1.0]).unwrap();
        }
        coll.seal().unwrap();
        assert_eq!(coll.segment_stats()[0].kind, "flat-sq8");
        let hits = coll.search(&[2.5, -2.5, 1.25, 1.0], &SearchOptions::new(2));
        assert_eq!(ids_of(&hits), vec![10, 9]);
    }

    #[test]
    fn snapshot_pins_a_state_across_mutations() {
        let coll = Collection::in_memory(2, small_config());
        for i in 0..50u64 {
            coll.insert(i, &[i as f32, 0.0]).unwrap();
        }
        let snap = coll.snapshot();
        let opts = SearchOptions::new(4);
        let before = snap.search(&[0.0, 0.0], &opts);

        coll.delete(0).unwrap();
        coll.delete(1).unwrap();
        coll.insert(1000, &[0.5, 0.0]).unwrap();

        // The pinned snapshot answers exactly as before…
        let pinned = snap.search(&[0.0, 0.0], &opts);
        assert_eq!(before, pinned);
        assert_eq!(snap.live_len(), 50);
        // …while the collection reflects the mutations.
        let now = coll.search(&[0.0, 0.0], &opts);
        assert_eq!(ids_of(&now), vec![1000, 2, 3, 4]);
    }

    #[test]
    fn background_compaction_commits_and_frees_ids() {
        let coll = Arc::new(Collection::in_memory(2, small_config()));
        for i in 0..100u64 {
            coll.insert(i, &[i as f32, 0.0]).unwrap();
        }
        for i in (0..100u64).step_by(3) {
            coll.delete(i).unwrap();
        }
        let job = coll.compact_background().unwrap();
        // A second maintenance op is refused while the job runs (the
        // job may already have finished on a fast machine, so only the
        // error type is asserted when it occurs).
        if let Err(e) = coll.compact() {
            assert!(matches!(e, StoreError::MaintenanceBusy));
        }
        job.wait().unwrap();
        assert_eq!(coll.maintenance_in_flight(), 0);
        assert_eq!(coll.tombstone_count(), 0);
        assert_eq!(coll.segment_count(), 1);
        assert_eq!(coll.live_len(), 100 - 34);
        // Tombstoned ids are reusable after the commit.
        coll.insert(0, &[0.0, 0.0]).unwrap();
        let hits = coll.search(&[0.0, 0.0], &SearchOptions::new(1));
        assert_eq!(ids_of(&hits), vec![0]);
    }

    #[test]
    fn writes_during_background_compaction_survive() {
        let coll = Arc::new(Collection::in_memory(2, small_config()));
        for i in 0..64u64 {
            coll.insert(i, &[i as f32, 0.0]).unwrap();
        }
        coll.delete(10).unwrap();
        let job = coll.compact_background().unwrap();
        // Land writes while the job is (possibly) still running.
        for i in 100..140u64 {
            coll.insert(i, &[i as f32, 0.0]).unwrap();
        }
        coll.delete(20).unwrap();
        job.wait().unwrap();
        assert_eq!(coll.live_len(), 64 - 2 + 40);
        assert!(coll.contains(100));
        assert!(!coll.contains(20));
        let hits = coll.search(&[100.0, 0.0], &SearchOptions::new(1));
        assert_eq!(ids_of(&hits), vec![100]);
    }
}
