//! The mutable collection: write buffer + sealed segments + tombstones,
//! served through [`VectorIndex`] and persisted crash-safely.

use crate::manifest::{wal_file, Manifest};
use crate::wal::{Wal, WalRecord};
use crate::{Segment, StoreConfig, StoreError, WriteBuffer};
use pdx_core::engine::{SearchOptions, SearchSegment, SegmentedSearch, VectorIndex};
use pdx_core::heap::Neighbor;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};

/// Where a live external id currently resides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// In the write buffer.
    Buffer,
    /// In `segments[i]`.
    Segment(usize),
}

/// Per-segment statistics, as reported by [`Collection::segment_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentStat {
    /// Segment sequence number.
    pub seq: u64,
    /// Deployment kind (`flat-pdx` / `flat-sq8`).
    pub kind: &'static str,
    /// Physical rows (tombstoned ones included).
    pub rows: usize,
    /// Tombstoned rows awaiting compaction.
    pub dead: usize,
}

/// An LSM-style mutable vector collection.
///
/// Inserts land in an in-memory [`WriteBuffer`] (after a WAL append
/// when persistent) and seal into immutable [`Segment`]s; deletes
/// remove buffered rows in place and tombstone sealed rows; searches
/// merge the buffer scan with every segment's PDXearch through the
/// canonical `(distance, id)` order; [`Collection::compact`] rewrites
/// the surviving rows as one fresh segment. See the crate docs for the
/// on-disk layout and crash-safety invariants.
///
/// A deleted external id stays **reserved** until compaction purges its
/// physical row: re-inserting it before then returns
/// [`StoreError::DuplicateId`].
///
/// ```
/// use pdx_store::{Collection, StoreConfig};
/// use pdx_core::engine::{SearchOptions, VectorIndex};
///
/// let mut coll = Collection::in_memory(2, StoreConfig::default());
/// coll.insert(7, &[0.0, 0.0])?;
/// coll.insert(9, &[1.0, 0.0])?;
/// let hits = coll.search(&[0.1, 0.0], &SearchOptions::new(1));
/// assert_eq!(hits[0].id, 7);
/// coll.delete(7)?;
/// let hits = coll.search(&[0.1, 0.0], &SearchOptions::new(1));
/// assert_eq!(hits[0].id, 9);
/// # Ok::<(), pdx_store::StoreError>(())
/// ```
#[derive(Debug)]
pub struct Collection {
    dims: usize,
    config: StoreConfig,
    buffer: WriteBuffer,
    segments: Vec<Segment>,
    /// External ids deleted from sealed segments, filtered at merge
    /// time and purged at compaction.
    tombstones: HashSet<u64>,
    /// Live external id → current residence.
    locations: HashMap<u64, Loc>,
    /// Persistence root; `None` for an in-memory collection.
    dir: Option<PathBuf>,
    wal: Option<Wal>,
    wal_seq: u64,
    next_segment_seq: u64,
}

impl Collection {
    /// A purely in-memory collection (no directory, no WAL): the same
    /// semantics without durability, for tests and benchmarks.
    ///
    /// # Panics
    /// Panics if `dims == 0` or the config has a zero knob.
    pub fn in_memory(dims: usize, config: StoreConfig) -> Self {
        assert!(dims > 0, "dims must be positive");
        assert!(
            config.block_size > 0 && config.group_size > 0 && config.buffer_capacity > 0,
            "config knobs must be positive"
        );
        Self {
            dims,
            config,
            buffer: WriteBuffer::new(dims),
            segments: Vec::new(),
            tombstones: HashSet::new(),
            locations: HashMap::new(),
            dir: None,
            wal: None,
            wal_seq: 0,
            next_segment_seq: 0,
        }
    }

    /// Creates a new persistent collection in `dir` (created if
    /// missing), writing the initial manifest and WAL.
    ///
    /// # Errors
    /// `AlreadyExists` if `dir` already holds a manifest; IO errors are
    /// propagated.
    pub fn create(
        dir: impl AsRef<Path>,
        dims: usize,
        config: StoreConfig,
    ) -> Result<Self, StoreError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        if Manifest::path(dir).exists() {
            return Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!("{}: collection already exists", dir.display()),
            )));
        }
        let mut coll = Self::in_memory(dims, config);
        coll.manifest().write_atomic(dir)?;
        coll.wal = Some(Wal::create(&dir.join(wal_file(0)), dims)?);
        coll.dir = Some(dir.to_path_buf());
        Ok(coll)
    }

    /// Opens a persistent collection: loads the manifest and segments,
    /// applies the tombstones, and replays the WAL (with torn-tail
    /// truncation) to rebuild the write buffer.
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] on invariant violations (a tombstone for
    /// an unknown id, a replayed duplicate insert, a mismatched remap
    /// table); IO and format errors are propagated.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref();
        let manifest = Manifest::read(dir)?;
        let mut coll = Self::in_memory(manifest.dims, manifest.config);
        coll.wal_seq = manifest.wal_seq;
        coll.next_segment_seq = manifest.next_segment_seq;
        for &seq in &manifest.segments {
            let segment = Segment::load(dir, seq, manifest.dims)?;
            let si = coll.segments.len();
            for &ext in segment.remap() {
                if coll.locations.insert(ext, Loc::Segment(si)).is_some() {
                    return Err(StoreError::Corrupt(format!(
                        "external id {ext} appears in two segments"
                    )));
                }
            }
            coll.segments.push(segment);
        }
        for &id in &manifest.tombstones {
            match coll.locations.remove(&id) {
                Some(Loc::Segment(si)) => {
                    coll.segments[si].note_dead();
                    coll.tombstones.insert(id);
                }
                _ => {
                    return Err(StoreError::Corrupt(format!(
                        "tombstone for id {id} which no segment holds"
                    )))
                }
            }
        }
        let (wal, records) = Wal::open(&dir.join(wal_file(manifest.wal_seq)), manifest.dims)?;
        for record in records {
            // Replay mutates memory only — the records are already
            // durable — and surfaces violations as corruption.
            let replayed = match record {
                WalRecord::Insert { id, vector } => coll.apply_insert(id, &vector),
                WalRecord::Delete { id } => coll.apply_delete(id),
            };
            replayed.map_err(|e| StoreError::Corrupt(format!("wal replay: {e}")))?;
        }
        coll.wal = Some(wal);
        coll.dir = Some(dir.to_path_buf());
        Ok(coll)
    }

    /// Dimensionality of the collection.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The store configuration fixed at creation.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Number of live (inserted and not deleted) vectors.
    pub fn live_len(&self) -> usize {
        self.locations.len()
    }

    /// Number of vectors currently in the write buffer.
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// Number of sealed segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Number of tombstoned (deleted but not yet compacted) rows.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }

    /// Whether the collection persists to a directory.
    pub fn is_persistent(&self) -> bool {
        self.dir.is_some()
    }

    /// Current WAL generation (persistent collections).
    pub fn wal_seq(&self) -> u64 {
        self.wal_seq
    }

    /// Per-segment statistics in storage order.
    pub fn segment_stats(&self) -> Vec<SegmentStat> {
        self.segments
            .iter()
            .map(|s| SegmentStat {
                seq: s.seq(),
                kind: s.kind(),
                rows: s.len(),
                dead: s.dead(),
            })
            .collect()
    }

    /// The largest external id ever observed (live or tombstoned), or
    /// `None` for a collection that never held a row.
    pub fn max_id(&self) -> Option<u64> {
        let live = self.locations.keys().max().copied();
        let dead = self.tombstones.iter().max().copied();
        live.max(dead)
    }

    /// Whether `id` is live (searchable) in the collection.
    pub fn contains(&self, id: u64) -> bool {
        self.locations.contains_key(&id)
    }

    /// Whether `id` is unavailable for insertion: live, or tombstoned
    /// (deleted ids stay reserved until [`Collection::compact`]).
    pub fn is_id_reserved(&self, id: u64) -> bool {
        self.locations.contains_key(&id) || self.tombstones.contains(&id)
    }

    /// Inserts one vector under an external id: WAL append first, then
    /// the write buffer; seals automatically when the buffer reaches
    /// its configured capacity.
    ///
    /// # Errors
    /// [`StoreError::DimsMismatch`], [`StoreError::DuplicateId`] (also
    /// for tombstoned ids — reserved until compaction), or an IO error.
    /// An IO error from the *automatic seal* is reported here, but the
    /// insert itself is already WAL-committed and applied at that
    /// point — the collection stays consistent and the seal retries on
    /// the next trigger.
    pub fn insert(&mut self, id: u64, vector: &[f32]) -> Result<(), StoreError> {
        self.check_insert(id, vector)?;
        if let Some(wal) = &mut self.wal {
            wal.append(&WalRecord::Insert {
                id,
                vector: vector.to_vec(),
            })?;
        }
        self.apply_insert_unchecked(id, vector)?;
        if self.buffer.len() >= self.config.buffer_capacity {
            self.seal()?;
        }
        Ok(())
    }

    /// Bulk-loads `rows` under consecutive ids `first_id..first_id + n`,
    /// **bypassing the WAL**: rows become durable at the automatic
    /// seals (the segment + manifest commit), and the call ends with a
    /// seal, so on success everything is durable. The whole id range is
    /// validated before anything is applied. This is the build path —
    /// logging a bulk load record-by-record only to delete the log at
    /// the next seal would double its IO for nothing.
    ///
    /// # Errors
    /// [`StoreError::DimsMismatch`] / [`StoreError::DuplicateId`]
    /// before anything is applied, or an IO error from a seal — on an
    /// IO error (or a crash mid-call) rows after the last committed
    /// seal are lost, consistent with "the manifest is the commit
    /// point".
    pub fn bulk_insert(&mut self, first_id: u64, rows: &[f32]) -> Result<(), StoreError> {
        if rows.len() % self.dims != 0 {
            return Err(StoreError::DimsMismatch {
                expected: self.dims,
                got: rows.len() % self.dims,
            });
        }
        let n = rows.len() / self.dims;
        for i in 0..n {
            let id = first_id + i as u64;
            if self.is_id_reserved(id) {
                return Err(StoreError::DuplicateId(id));
            }
        }
        for i in 0..n {
            self.apply_insert_unchecked(
                first_id + i as u64,
                &rows[i * self.dims..(i + 1) * self.dims],
            )?;
            if self.buffer.len() >= self.config.buffer_capacity {
                self.seal()?;
            }
        }
        self.seal()
    }

    /// Deletes an external id: a buffered row is removed in place, a
    /// sealed row is tombstoned (filtered from every search, purged at
    /// compaction).
    ///
    /// # Errors
    /// [`StoreError::NotFound`] if the id is not live, or an IO error.
    pub fn delete(&mut self, id: u64) -> Result<(), StoreError> {
        if !self.locations.contains_key(&id) {
            return Err(StoreError::NotFound(id));
        }
        if let Some(wal) = &mut self.wal {
            wal.append(&WalRecord::Delete { id })?;
        }
        self.apply_delete(id)
    }

    /// Validation shared by [`Collection::insert`] and WAL replay.
    fn check_insert(&self, id: u64, vector: &[f32]) -> Result<(), StoreError> {
        if vector.len() != self.dims {
            return Err(StoreError::DimsMismatch {
                expected: self.dims,
                got: vector.len(),
            });
        }
        if self.is_id_reserved(id) {
            return Err(StoreError::DuplicateId(id));
        }
        Ok(())
    }

    /// Memory-only insert with re-validation (the WAL replay path —
    /// a duplicate in the log is corruption, not a caller bug).
    fn apply_insert(&mut self, id: u64, vector: &[f32]) -> Result<(), StoreError> {
        self.check_insert(id, vector)?;
        self.apply_insert_unchecked(id, vector)
    }

    /// Memory-only insert for ids [`Collection::check_insert`] already
    /// admitted (the hot path validates exactly once).
    fn apply_insert_unchecked(&mut self, id: u64, vector: &[f32]) -> Result<(), StoreError> {
        self.buffer.append(id, vector)?;
        self.locations.insert(id, Loc::Buffer);
        Ok(())
    }

    /// Memory-only delete (the WAL record is already durable).
    fn apply_delete(&mut self, id: u64) -> Result<(), StoreError> {
        match self.locations.get(&id) {
            None => Err(StoreError::NotFound(id)),
            Some(Loc::Buffer) => {
                self.buffer.remove(id)?;
                self.locations.remove(&id);
                Ok(())
            }
            Some(&Loc::Segment(si)) => {
                self.tombstones.insert(id);
                self.segments[si].note_dead();
                self.locations.remove(&id);
                Ok(())
            }
        }
    }

    /// The manifest describing the current durable state.
    fn manifest(&self) -> Manifest {
        let mut tombstones: Vec<u64> = self.tombstones.iter().copied().collect();
        tombstones.sort_unstable();
        Manifest {
            dims: self.dims,
            config: self.config,
            wal_seq: self.wal_seq,
            next_segment_seq: self.next_segment_seq,
            segments: self.segments.iter().map(|s| s.seq()).collect(),
            tombstones,
        }
    }

    /// Rotates to a fresh WAL generation after `manifest` committed:
    /// the old log's records are all covered by the manifest's
    /// segments, so it is deleted.
    fn rotate_wal(&mut self, dir: &Path) -> Result<(), StoreError> {
        let old = self.wal.as_ref().map(|w| w.path().to_path_buf());
        self.wal = Some(Wal::create(&dir.join(wal_file(self.wal_seq)), self.dims)?);
        if let Some(old) = old {
            std::fs::remove_file(old).ok();
        }
        Ok(())
    }

    /// Seals the write buffer into a new immutable segment (no-op when
    /// the buffer is empty). Persistent collections write the segment
    /// files, commit a new manifest, and rotate the WAL.
    ///
    /// # Errors
    /// Propagates IO errors; the collection commits atomically (a crash
    /// before the manifest rename leaves the previous state intact).
    pub fn seal(&mut self) -> Result<(), StoreError> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let (ids, rows) = self.buffer.entries_sorted();
        let seq = self.next_segment_seq;
        let segment = Segment::seal(seq, ids, &rows, self.dims, &self.config)?;
        if let Some(dir) = self.dir.clone() {
            segment.write(&dir)?;
            self.wal_seq += 1;
            self.next_segment_seq = seq + 1;
            let mut manifest = self.manifest();
            manifest.segments.push(seq);
            manifest.write_atomic(&dir)?;
            self.rotate_wal(&dir)?;
        } else {
            self.next_segment_seq = seq + 1;
        }
        let si = self.segments.len();
        for &id in segment.remap() {
            self.locations.insert(id, Loc::Segment(si));
        }
        self.segments.push(segment);
        self.buffer.clear();
        Ok(())
    }

    /// Merges every segment and the write buffer, purges tombstoned
    /// rows, and rewrites the surviving rows — sorted by external id —
    /// as one freshly partitioned segment. Afterwards searches are
    /// bit-identical to a fresh flat build over the surviving rows, and
    /// all tombstoned ids become reusable.
    ///
    /// # Errors
    /// Propagates IO errors; commits atomically via the manifest.
    pub fn compact(&mut self) -> Result<(), StoreError> {
        let mut all_ids: Vec<u64> = Vec::with_capacity(self.live_len());
        let mut all_rows: Vec<f32> = Vec::with_capacity(self.live_len() * self.dims);
        for segment in &self.segments {
            let (ids, rows) = segment.live_rows(&self.tombstones);
            all_ids.extend_from_slice(&ids);
            all_rows.extend_from_slice(&rows);
        }
        let (buf_ids, buf_rows) = self.buffer.entries_sorted();
        all_ids.extend_from_slice(&buf_ids);
        all_rows.extend_from_slice(&buf_rows);
        // Global external-id order (each source is sorted, but sources
        // interleave).
        let mut order: Vec<usize> = (0..all_ids.len()).collect();
        order.sort_unstable_by_key(|&i| all_ids[i]);
        let ids: Vec<u64> = order.iter().map(|&i| all_ids[i]).collect();
        let mut rows = Vec::with_capacity(all_rows.len());
        for &i in &order {
            rows.extend_from_slice(&all_rows[i * self.dims..(i + 1) * self.dims]);
        }

        let old_seqs: Vec<u64> = self.segments.iter().map(|s| s.seq()).collect();
        let seq = self.next_segment_seq;
        let new_segment = if ids.is_empty() {
            None
        } else {
            Some(Segment::seal(seq, ids, &rows, self.dims, &self.config)?)
        };
        if let Some(dir) = self.dir.clone() {
            if let Some(s) = &new_segment {
                s.write(&dir)?;
            }
            self.wal_seq += 1;
            if new_segment.is_some() {
                self.next_segment_seq = seq + 1;
            }
            let manifest = Manifest {
                dims: self.dims,
                config: self.config,
                wal_seq: self.wal_seq,
                next_segment_seq: self.next_segment_seq,
                segments: new_segment.iter().map(|s| s.seq()).collect(),
                tombstones: Vec::new(),
            };
            manifest.write_atomic(&dir)?;
            self.rotate_wal(&dir)?;
            for old in old_seqs {
                Segment::remove_files(&dir, old);
            }
        } else if new_segment.is_some() {
            self.next_segment_seq = seq + 1;
        }
        self.segments.clear();
        self.buffer.clear();
        self.tombstones.clear();
        self.locations.clear();
        if let Some(segment) = new_segment {
            for &id in segment.remap() {
                self.locations.insert(id, Loc::Segment(0));
            }
            self.segments.push(segment);
        }
        Ok(())
    }

    /// Forces WAL records to stable storage (appends are flushed to the
    /// OS per operation, synced to the device here).
    ///
    /// # Errors
    /// Propagates IO errors.
    pub fn sync(&self) -> Result<(), StoreError> {
        if let Some(wal) = &self.wal {
            wal.sync()?;
        }
        Ok(())
    }

    /// The segmented read path over the current sealed segments.
    fn segmented(&self) -> SegmentedSearch<'_> {
        SegmentedSearch::new(
            self.segments
                .iter()
                .map(|s| SearchSegment {
                    index: s.index(),
                    remap: s.remap(),
                    dead: s.dead(),
                })
                .collect(),
        )
    }

    /// The buffer's exact-scan candidates for one query.
    fn buffer_list(&self, query: &[f32], opts: &SearchOptions) -> [Vec<Neighbor>; 1] {
        [self.buffer.scan(query, opts.k, opts.metric, opts.variant)]
    }
}

impl VectorIndex for Collection {
    fn dims(&self) -> usize {
        self.dims
    }

    fn len(&self) -> usize {
        self.locations.len()
    }

    fn kind(&self) -> &'static str {
        "collection"
    }

    /// Merges the buffer's exact linear scan with every segment's
    /// search through the canonical `(distance, id)` order, dropping
    /// tombstoned rows during the merge. `f32` segments honour the
    /// pruner/metric options, SQ8 segments the refine/metric options —
    /// exactly as the standalone deployments do.
    fn search(&self, query: &[f32], opts: &SearchOptions) -> Vec<Neighbor> {
        let extra = self.buffer_list(query, opts);
        self.segmented()
            .search(&extra, query, opts, |id| !self.tombstones.contains(&id))
    }

    /// Intra-query parallelism: each segment scans through its
    /// deployment's `search_parallel` (bit-identical to sequential at
    /// any thread count), the buffer scan stays sequential, and the
    /// merge is canonical — so the result equals
    /// [`VectorIndex::search`] at any width, live tombstones included.
    fn search_parallel(&self, query: &[f32], opts: &SearchOptions) -> Vec<Neighbor> {
        let extra = self.buffer_list(query, opts);
        self.segmented()
            .search_parallel(&extra, query, opts, |id| !self.tombstones.contains(&id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdx_core::engine::SearchOptions;

    fn small_config() -> StoreConfig {
        StoreConfig {
            block_size: 16,
            group_size: 8,
            buffer_capacity: 32,
            quantize: false,
        }
    }

    fn ids_of(hits: &[Neighbor]) -> Vec<u64> {
        hits.iter().map(|n| n.id).collect()
    }

    #[test]
    fn insert_search_delete_in_memory() {
        let mut coll = Collection::in_memory(2, small_config());
        for i in 0..10u64 {
            coll.insert(i, &[i as f32, 0.0]).unwrap();
        }
        assert_eq!(coll.live_len(), 10);
        let hits = coll.search(&[0.0, 0.0], &SearchOptions::new(3));
        assert_eq!(ids_of(&hits), vec![0, 1, 2]);

        coll.delete(1).unwrap();
        let hits = coll.search(&[0.0, 0.0], &SearchOptions::new(3));
        assert_eq!(ids_of(&hits), vec![0, 2, 3]);
        assert!(matches!(coll.delete(1), Err(StoreError::NotFound(1))));
        assert!(matches!(
            coll.insert(0, &[9.0, 9.0]),
            Err(StoreError::DuplicateId(0))
        ));
    }

    #[test]
    fn auto_seal_keeps_results_and_reserves_tombstoned_ids() {
        let mut coll = Collection::in_memory(2, small_config());
        for i in 0..80u64 {
            coll.insert(i, &[i as f32, 0.0]).unwrap();
        }
        // capacity 32: two seals happened, a partial buffer remains.
        assert_eq!(coll.segment_count(), 2);
        assert_eq!(coll.buffer_len(), 80 - 64);
        let hits = coll.search(&[5.0, 0.0], &SearchOptions::new(3));
        assert_eq!(ids_of(&hits), vec![5, 4, 6]);

        // Delete a sealed row: tombstoned, filtered, id reserved.
        coll.delete(5).unwrap();
        assert_eq!(coll.tombstone_count(), 1);
        let hits = coll.search(&[5.0, 0.0], &SearchOptions::new(3));
        assert_eq!(ids_of(&hits), vec![4, 6, 3]);
        assert!(matches!(
            coll.insert(5, &[5.0, 0.0]),
            Err(StoreError::DuplicateId(5))
        ));

        // Compaction purges the row and frees the id.
        coll.compact().unwrap();
        assert_eq!(coll.segment_count(), 1);
        assert_eq!(coll.tombstone_count(), 0);
        assert_eq!(coll.live_len(), 79);
        coll.insert(5, &[5.0, 0.0]).unwrap();
        let hits = coll.search(&[5.0, 0.0], &SearchOptions::new(1));
        assert_eq!(ids_of(&hits), vec![5]);
    }

    #[test]
    fn bulk_insert_matches_the_insert_loop_and_validates_up_front() {
        let rows: Vec<f32> = (0..200).map(|i| i as f32).collect(); // 100 × 2
        let mut a = Collection::in_memory(2, small_config());
        a.bulk_insert(10, &rows).unwrap();
        assert_eq!(a.buffer_len(), 0, "bulk load ends sealed");
        let mut b = Collection::in_memory(2, small_config());
        for i in 0..100 {
            b.insert(10 + i as u64, &rows[i * 2..(i + 1) * 2]).unwrap();
        }
        b.seal().unwrap();
        let opts = SearchOptions::new(5);
        assert_eq!(a.search(&[3.0, 4.0], &opts), b.search(&[3.0, 4.0], &opts));

        // A conflict anywhere in the range aborts before anything lands.
        let err = a.bulk_insert(105, &rows[..4]).unwrap_err();
        assert!(matches!(err, StoreError::DuplicateId(105)));
        assert_eq!(a.live_len(), 100);
        assert!(matches!(
            a.bulk_insert(500, &rows[..3]),
            Err(StoreError::DimsMismatch { .. })
        ));
    }

    #[test]
    fn compact_of_empty_collection_is_fine() {
        let mut coll = Collection::in_memory(3, small_config());
        coll.compact().unwrap();
        assert_eq!(coll.live_len(), 0);
        coll.insert(1, &[0.0; 3]).unwrap();
        coll.delete(1).unwrap();
        coll.compact().unwrap();
        assert_eq!(coll.segment_count(), 0);
        assert!(coll.search(&[0.0; 3], &SearchOptions::new(1)).is_empty());
    }

    #[test]
    fn quantized_collection_reranks_exactly() {
        let mut coll = Collection::in_memory(
            4,
            StoreConfig {
                quantize: true,
                ..small_config()
            },
        );
        for i in 0..60u64 {
            let x = i as f32 * 0.25;
            coll.insert(i, &[x, -x, x * 0.5, 1.0]).unwrap();
        }
        coll.seal().unwrap();
        assert_eq!(coll.segment_stats()[0].kind, "flat-sq8");
        let hits = coll.search(&[2.5, -2.5, 1.25, 1.0], &SearchOptions::new(2));
        assert_eq!(ids_of(&hits), vec![10, 9]);
    }
}
