#![warn(missing_docs)]

//! # pdx-engine — the dynamic serving layer
//!
//! Thin layer on top of [`pdx_core::engine`]: it turns *persisted* or
//! *pruner-paired* deployments into `Box<dyn VectorIndex>` trait
//! objects, so everything above it (the CLI, benchmark harnesses,
//! network/sharding layers) programs against one surface and never
//! branches on the container or deployment kind.
//!
//! * [`AnyIndex`] — opens an on-disk container
//!   ([`pdx_datasets::persist`]), sniffs the magic number (`PDX1` f32,
//!   `PDX2` SQ8, `PDX3` mutable-collection manifest) and returns
//!   whichever deployment the file holds; a directory is served as the
//!   mutable collection ([`pdx_store::Collection`]) — or, when it
//!   holds a `SHARDS` manifest, the [`pdx_store::ShardedCollection`] —
//!   it contains. IVF-extended (1.1) containers additionally open
//!   *lazily* ([`pdx_index::LazyIvf`]) when a block-cache budget is
//!   configured via [`OpenOptions`] or `PDX_CACHE_BYTES`.
//! * [`PrunedFlat`] / [`PrunedIvf`] — pair a deployment with a *fitted*
//!   pruner (ADSampling's rotation, BSA's PCA — state that cannot be
//!   chosen from plain options) and serve it through the same trait.
//!
//! ```no_run
//! use pdx_engine::AnyIndex;
//! use pdx_core::engine::SearchOptions;
//!
//! let index = AnyIndex::open("index.pdx")?; // PDX1 or PDX2, sniffed
//! let hits = index.search(&vec![0.0; index.dims()], &SearchOptions::new(10));
//! assert_eq!(hits.len(), 10);
//! # Ok::<(), std::io::Error>(())
//! ```

use pdx_core::collection::SearchBlock;
use pdx_core::engine::{SearchOptions, VectorIndex};
use pdx_core::heap::Neighbor;
use pdx_core::pruning::Pruner;
use pdx_datasets::persist::{read_container, read_container_path, Container};
use pdx_index::{FlatPdx, FlatSq8, IvfPdx, IvfSq8, LazyIvf};
use pdx_store::{Collection, ShardedCollection, MANIFEST_FILE, MANIFEST_MAGIC};
use std::io;
use std::path::Path;

/// Deployment-independent open knobs for [`AnyIndex::open_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct OpenOptions {
    /// Block-cache budget for out-of-core deployments. `Some(bytes)`
    /// opens an IVF-extended `f32` container lazily ([`LazyIvf`])
    /// instead of resident; `None` defers to the `PDX_CACHE_BYTES`
    /// environment variable
    /// ([`pdx_core::cache::resolve_cache_bytes`]), and stays fully
    /// resident when that is unset too. Containers without a bucket
    /// table (legacy 1.0) ignore the budget.
    pub cache_bytes: Option<u64>,
}

impl OpenOptions {
    /// Sets an explicit cache budget (overrides the environment).
    #[must_use]
    pub fn with_cache_bytes(mut self, bytes: u64) -> Self {
        self.cache_bytes = Some(bytes);
        self
    }
}

/// Opens any persisted PDX index as a dynamic [`VectorIndex`].
///
/// This is the serving-side entry point: anything written by
/// `pdx-cli build` (or the persistence layers directly) comes back as
/// whichever deployment it holds, behind one trait object —
///
/// * a `PDX1` container as a [`FlatPdx`] — or, when it carries the
///   1.1 bucket table, as an [`IvfPdx`] (resident) or a [`LazyIvf`]
///   (out-of-core, when a cache budget is configured);
/// * a `PDX2` container as a [`FlatSq8`] / [`IvfSq8`] (scan-only when
///   the file carries no rerank payload);
/// * a `PDX3` manifest — or the directory holding one — as the mutable
///   [`Collection`] it describes (segments loaded, WAL replayed with
///   torn-tail recovery);
/// * a directory with a `SHARDS` manifest as the [`ShardedCollection`]
///   it describes.
pub struct AnyIndex;

impl AnyIndex {
    /// Opens a container file, manifest file or collection directory,
    /// dispatching on the magic number. Errors name the offending path.
    ///
    /// Equivalent to [`AnyIndex::open_with`] with default options: the
    /// cache budget (and therefore lazy opening) is still picked up
    /// from `PDX_CACHE_BYTES` when set.
    ///
    /// # Errors
    /// Propagates IO errors and container-format errors; an unknown
    /// magic number reports the path and the four bytes read.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Box<dyn VectorIndex>> {
        Self::open_with(path, OpenOptions::default())
    }

    /// [`AnyIndex::open`] with explicit [`OpenOptions`].
    ///
    /// # Errors
    /// Propagates IO errors and container-format errors; an unknown
    /// magic number reports the path and the four bytes read.
    pub fn open_with(
        path: impl AsRef<Path>,
        opts: OpenOptions,
    ) -> io::Result<Box<dyn VectorIndex>> {
        let path = path.as_ref();
        let with_path = |e: io::Error| io::Error::new(e.kind(), format!("{}: {e}", path.display()));
        if path.is_dir() {
            if ShardedCollection::is_sharded_dir(path) {
                let sharded = ShardedCollection::open(path)
                    .map_err(io::Error::from)
                    .map_err(with_path)?;
                return Ok(Box::new(sharded));
            }
            let coll = Collection::open(path)
                .map_err(io::Error::from)
                .map_err(with_path)?;
            return Ok(Box::new(coll));
        }
        // Sniff the magic ourselves so a PDX3 manifest can route to the
        // store; PDX1/PDX2 re-read through the container path.
        let mut magic = [0u8; 4];
        {
            use io::Read;
            let mut f = std::fs::File::open(path).map_err(with_path)?;
            f.read_exact(&mut magic).map_err(with_path)?;
        }
        if &magic == MANIFEST_MAGIC {
            if path.file_name().and_then(|n| n.to_str()) != Some(MANIFEST_FILE) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{}: a PDX3 manifest must be named {MANIFEST_FILE} inside its \
                         collection directory",
                        path.display()
                    ),
                ));
            }
            let dir = path.parent().unwrap_or_else(|| Path::new("."));
            let coll = Collection::open(dir)
                .map_err(io::Error::from)
                .map_err(with_path)?;
            return Ok(Box::new(coll));
        }
        // An IVF-extended f32 container with a cache budget serves
        // lazily: O(header) open, buckets fetched on demand.
        if let Some(budget) = pdx_core::cache::resolve_cache_bytes(opts.cache_bytes) {
            if &magic == b"PDX1" {
                if let Ok(lazy) = LazyIvf::open(path, budget) {
                    return Ok(Box::new(lazy));
                }
                // Legacy 1.0 container: fall through to the resident
                // reader (it has no bucket table to seek by).
            }
        }
        Ok(Self::from_container(read_container_path(path)?))
    }

    /// Reads a container from any reader, dispatching on its magic
    /// number (`PDX1`/`PDX2` only — a `PDX3` collection spans several
    /// files and must be opened by path). Always fully resident: lazy
    /// opening needs a seekable file, not a stream.
    ///
    /// # Errors
    /// Propagates IO errors and container-format errors.
    pub fn read<R: io::Read>(r: R) -> io::Result<Box<dyn VectorIndex>> {
        Ok(Self::from_container(read_container(r)?))
    }

    /// Wraps an already-loaded container in its deployment.
    pub fn from_container(container: Container) -> Box<dyn VectorIndex> {
        match container {
            Container::F32(collection) => Box::new(FlatPdx::from_collection(collection)),
            Container::Sq8(c) => {
                Box::new(FlatSq8::from_parts(c.dims, c.quantizer, c.blocks, c.rows))
            }
            Container::IvfF32(c) => {
                let n_buckets = c.blocks.len();
                // Rebuilt with the same call the lazy reader uses, so
                // both deployments probe identically.
                let centroids = SearchBlock::new(
                    &c.centroid_rows,
                    (0..n_buckets as u64).collect(),
                    c.dims,
                    c.group,
                );
                Box::new(IvfPdx {
                    dims: c.dims,
                    centroids,
                    blocks: c.blocks,
                })
            }
            Container::IvfSq8(c) => {
                let n_buckets = c.blocks.len();
                let centroids = SearchBlock::new(
                    &c.centroid_rows,
                    (0..n_buckets as u64).collect(),
                    c.dims,
                    c.group,
                );
                Box::new(IvfSq8 {
                    dims: c.dims,
                    quantizer: c.quantizer,
                    centroids,
                    blocks: c.blocks,
                    rows: c.rows,
                })
            }
        }
    }
}

/// Deployment-prefixed `kind()` for the pruned adapters, so a
/// `PrunedFlat<AdSampling>` ("pruned-flat-adsampling") is
/// distinguishable from a `PrunedIvf<AdSampling>`
/// ("pruned-ivf-adsampling") in logs and reports, matching the other
/// deployments' "flat-pdx"/"ivf-pdx" convention. `kind()` returns
/// `&'static str`, hence the name table instead of concatenation.
fn pruned_kind(flat: bool, pruner: &str) -> &'static str {
    match (flat, pruner) {
        (true, "bond") => "pruned-flat-bond",
        (true, "adsampling") => "pruned-flat-adsampling",
        (true, "bsa") => "pruned-flat-bsa",
        (true, "bsa-learned") => "pruned-flat-bsa-learned",
        (true, _) => "pruned-flat",
        (false, "bond") => "pruned-ivf-bond",
        (false, "adsampling") => "pruned-ivf-adsampling",
        (false, "bsa") => "pruned-ivf-bsa",
        (false, "bsa-learned") => "pruned-ivf-bsa-learned",
        (false, _) => "pruned-ivf",
    }
}

/// A flat deployment paired with a fitted pruner, served through
/// [`VectorIndex`].
///
/// [`PrunerKind`](pdx_core::engine::PrunerKind) covers the strategies
/// that need no per-collection state (BOND, linear). Pruners with
/// trained state — ADSampling's random rotation, BSA's PCA — transform
/// the collection at build time; this adapter owns that pairing, so an
/// ADS- or BSA-pruned deployment is *also* a `Box<dyn VectorIndex>`.
/// The wrapped collection must already be stored in the pruner's space
/// (i.e. built from `transform_collection` output); the adapter ignores
/// [`SearchOptions::pruner`] and `metric` — the fitted pruner defines
/// both.
///
/// For approximate pruners `search_parallel` may legitimately differ
/// from the sequential search (their bound depends on the threshold's
/// history); `search_batch` stays bit-identical at any width.
#[derive(Debug, Clone)]
pub struct PrunedFlat<P> {
    /// The deployment, stored in the pruner's space.
    pub flat: FlatPdx,
    /// The fitted pruner.
    pub pruner: P,
}

impl<P> PrunedFlat<P> {
    /// Pairs a deployment with its fitted pruner.
    pub fn new(flat: FlatPdx, pruner: P) -> Self {
        Self { flat, pruner }
    }
}

impl<P> VectorIndex for PrunedFlat<P>
where
    P: Pruner + Send + Sync,
    P::Query: Sync,
{
    fn dims(&self) -> usize {
        self.flat.collection.dims
    }

    fn len(&self) -> usize {
        self.flat.collection.total_vectors()
    }

    fn kind(&self) -> &'static str {
        pruned_kind(true, self.pruner.name())
    }

    fn search(&self, query: &[f32], opts: &SearchOptions) -> Vec<Neighbor> {
        self.flat.search(&self.pruner, query, &opts.params())
    }

    fn search_parallel(&self, query: &[f32], opts: &SearchOptions) -> Vec<Neighbor> {
        self.flat
            .search_parallel(&self.pruner, query, &opts.params(), opts.threads)
    }
}

/// An IVF-PDX deployment paired with a fitted pruner, served through
/// [`VectorIndex`] (see [`PrunedFlat`] for the pairing rules).
/// [`SearchOptions::nprobe`] applies as usual (`0` = all buckets).
#[derive(Debug, Clone)]
pub struct PrunedIvf<P> {
    /// The deployment, with buckets stored in the pruner's space.
    pub ivf: IvfPdx,
    /// The fitted pruner.
    pub pruner: P,
}

impl<P> PrunedIvf<P> {
    /// Pairs a deployment with its fitted pruner.
    pub fn new(ivf: IvfPdx, pruner: P) -> Self {
        Self { ivf, pruner }
    }
}

impl<P> VectorIndex for PrunedIvf<P>
where
    P: Pruner + Send + Sync,
    P::Query: Sync,
{
    fn dims(&self) -> usize {
        self.ivf.dims
    }

    fn len(&self) -> usize {
        self.ivf.blocks.iter().map(|b| b.len()).sum()
    }

    fn kind(&self) -> &'static str {
        pruned_kind(false, self.pruner.name())
    }

    fn search(&self, query: &[f32], opts: &SearchOptions) -> Vec<Neighbor> {
        let nprobe = opts.resolve_nprobe(self.ivf.blocks.len());
        self.ivf.search(&self.pruner, query, nprobe, &opts.params())
    }

    fn search_parallel(&self, query: &[f32], opts: &SearchOptions) -> Vec<Neighbor> {
        let nprobe = opts.resolve_nprobe(self.ivf.blocks.len());
        self.ivf
            .search_parallel(&self.pruner, query, nprobe, &opts.params(), opts.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdx_core::distance::Metric;
    use pdx_core::engine::PrunerKind;
    use pdx_datasets::persist::{write_pdx_path, write_sq8_path};
    use pdx_index::IvfIndex;
    use pdx_pruners::AdSampling;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rows(n: usize, d: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n * d).map(|_| rng.random::<f32>() * 10.0).collect()
    }

    #[test]
    fn open_round_trips_both_container_kinds() {
        let (n, d, k) = (300, 8, 5);
        let rows = random_rows(n, d, 1);
        let q = random_rows(1, d, 2);
        let dir = std::env::temp_dir().join("pdx_engine_open_test");
        std::fs::create_dir_all(&dir).unwrap();
        let opts = SearchOptions::new(k);

        let flat = FlatPdx::new(&rows, n, d, 100, 16);
        let f32_path = dir.join("f32.pdx");
        write_pdx_path(&f32_path, &flat.collection).unwrap();
        let opened = AnyIndex::open(&f32_path).unwrap();
        assert_eq!(opened.kind(), "flat-pdx");
        assert_eq!(opened.dims(), d);
        assert_eq!(opened.len(), n);
        let direct: &dyn VectorIndex = &flat;
        assert_eq!(opened.search(&q, &opts), direct.search(&q, &opts));

        let sq8 = FlatSq8::build(&rows, n, d, 100, 16);
        let sq8_path = dir.join("sq8.pdx2");
        write_sq8_path(&sq8_path, &sq8.quantizer, &sq8.blocks, Some(&sq8.rows)).unwrap();
        let opened = AnyIndex::open(&sq8_path).unwrap();
        assert_eq!(opened.kind(), "flat-sq8");
        let direct: &dyn VectorIndex = &sq8;
        assert_eq!(opened.search(&q, &opts), direct.search(&q, &opts));

        // Scan-only containers open as estimate-only deployments.
        let scan_path = dir.join("scan.pdx2");
        write_sq8_path(&scan_path, &sq8.quantizer, &sq8.blocks, None).unwrap();
        let opened = AnyIndex::open(&scan_path).unwrap();
        assert_eq!(opened.kind(), "flat-sq8-scan-only");
        assert_eq!(opened.search(&q, &opts).len(), k);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_unknown_magic() {
        assert!(AnyIndex::read(&b"XXXXnot a container"[..]).is_err());
    }

    #[test]
    fn open_error_names_path_and_magic_bytes() {
        let dir = std::env::temp_dir().join("pdx_engine_badmagic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("not_an_index.bin");
        std::fs::write(&path, b"XXXXjunk").unwrap();
        let Err(err) = AnyIndex::open(&path) else {
            panic!("unknown magic unexpectedly opened")
        };
        let msg = err.to_string();
        assert!(msg.contains("not_an_index.bin"), "{msg}");
        assert!(msg.contains("XXXX"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_serves_collection_directories_and_manifests() {
        use pdx_store::{Collection, StoreConfig};
        let dir = std::env::temp_dir().join("pdx_engine_collection_test");
        std::fs::remove_dir_all(&dir).ok();
        let (n, d, k) = (120, 6, 4);
        let rows = random_rows(n, d, 21);
        let coll = Collection::create(
            &dir,
            d,
            StoreConfig {
                block_size: 32,
                group_size: 8,
                buffer_capacity: 50,
                quantize: false,
            },
        )
        .unwrap();
        for i in 0..n {
            coll.insert(i as u64, &rows[i * d..(i + 1) * d]).unwrap();
        }
        coll.delete(3).unwrap();
        let q = random_rows(1, d, 22);
        let opts = SearchOptions::new(k);
        let want = {
            let direct: &dyn VectorIndex = &coll;
            direct.search(&q, &opts)
        };
        drop(coll);

        // The directory and its MANIFEST file open identically.
        for target in [dir.clone(), dir.join("MANIFEST")] {
            let opened = AnyIndex::open(&target).unwrap();
            assert_eq!(opened.kind(), "collection");
            assert_eq!(opened.len(), n - 1);
            assert_eq!(opened.search(&q, &opts), want);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pruned_adapters_serve_fitted_pruners() {
        let (n, d, k) = (400, 12, 6);
        let rows = random_rows(n, d, 5);
        let q = random_rows(1, d, 6);
        let ads = AdSampling::fit(d, 3);
        let rotated = ads.transform_collection(&rows, n, 1);

        let flat = FlatPdx::new(&rotated, n, d, 128, 16);
        let exact = flat.linear_search(&ads.transform_vector(&q), k, Metric::L2);
        let served: Box<dyn VectorIndex> = Box::new(PrunedFlat::new(flat, ads.clone()));
        assert_eq!(served.kind(), "pruned-flat-adsampling");
        let opts = SearchOptions::new(k);
        let got = served.search(&q, &opts);
        // ADSampling at full depth over one flat deployment is near-exact;
        // its top-1 must match the exact scan in rotated space.
        assert_eq!(got[0].id, exact[0].id);
        // Batch default is bit-identical to the sequential loop.
        let queries = random_rows(3, d, 7);
        let batch = served.search_batch(&queries, &opts.with_threads(2));
        for (qi, got) in batch.iter().enumerate() {
            assert_eq!(got, &served.search(&queries[qi * d..(qi + 1) * d], &opts));
        }

        let index = IvfIndex::build(&rows, n, d, 8, 6, 2);
        let ads = AdSampling::fit(d, 3);
        let ivf = IvfPdx::new(&rotated, d, &index.assignments, 16);
        let served: Box<dyn VectorIndex> = Box::new(PrunedIvf::new(ivf, ads));
        assert_eq!(served.kind(), "pruned-ivf-adsampling");
        let got = served.search(&q, &opts); // nprobe = 0 → all buckets
        assert_eq!(got[0].id, exact[0].id);
        assert_eq!(served.len(), n);
    }

    #[test]
    fn options_pruner_kind_is_ignored_by_adapters() {
        // The fitted pruner wins: Bond/Linear selection has no effect.
        let (n, d) = (200, 8);
        let rows = random_rows(n, d, 9);
        let q = random_rows(1, d, 10);
        let ads = AdSampling::fit(d, 4);
        let rotated = ads.transform_collection(&rows, n, 1);
        let served = PrunedFlat::new(FlatPdx::new(&rotated, n, d, 64, 16), ads);
        let dyn_served: &dyn VectorIndex = &served;
        let a = dyn_served.search(&q, &SearchOptions::new(4));
        let b = dyn_served.search(&q, &SearchOptions::new(4).with_pruner(PrunerKind::Linear));
        assert_eq!(a, b);
    }
}
