//! One serving loop, any deployment: the `VectorIndex` trait and
//! `AnyIndex::open`.
//!
//! ```text
//! cargo run --release --example any_index
//! ```
//!
//! Builds one collection, persists it twice — as a plain `f32` PDX
//! container and as an SQ8-quantized container — then serves both
//! through the exact same code path: `AnyIndex::open` sniffs the kind,
//! and a single `Box<dyn VectorIndex>` loop answers batched queries
//! with one `SearchOptions`. This is the shape a production front end
//! (CLI, network server, shard router) programs against.

use pdx::prelude::*;
use std::time::Instant;

fn main() {
    // A 20 000-vector SIFT-shaped collection with 64 queries.
    let spec = *spec_by_name("sift").expect("spec exists");
    let n = 20_000;
    let nq = 64;
    let k = 10;
    println!(
        "generating {}/{} (n = {n}, queries = {nq})…",
        spec.name, spec.dims
    );
    let ds = generate(&spec, n, nq, 42);

    // Persist the same vectors as both container kinds.
    let dir = std::env::temp_dir().join("pdx_any_index_example");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let f32_path = dir.join("collection.pdx");
    let sq8_path = dir.join("collection.pdx2");

    let flat = FlatPdx::with_defaults(&ds.data, ds.len, ds.dims());
    pdx::datasets::persist::write_pdx_path(&f32_path, &flat.collection).expect("write PDX1");
    let sq8 = FlatSq8::with_defaults(&ds.data, ds.len, ds.dims());
    pdx::datasets::persist::write_sq8_path(&sq8_path, &sq8.quantizer, &sq8.blocks, Some(&sq8.rows))
        .expect("write PDX2");
    println!(
        "wrote {} (f32) and {} (SQ8, scan payload 4× smaller)\n",
        f32_path.display(),
        sq8_path.display()
    );

    // Exact reference for recall.
    let gt = ground_truth(&ds.data, &ds.queries, ds.dims(), k, Metric::L2, 0);

    // One loop serves both files — no branching on the container kind.
    let opts = SearchOptions::new(k);
    for path in [&f32_path, &sq8_path] {
        let index = AnyIndex::open(path).expect("open container");
        let t0 = Instant::now();
        let results = index.search_batch(&ds.queries, &opts);
        let secs = t0.elapsed().as_secs_f64();
        let ids: Vec<Vec<u64>> = results
            .iter()
            .map(|r| r.iter().map(|x| x.id).collect())
            .collect();
        let recall = mean_recall(&gt, &ids, k);
        println!(
            "{:<14} {:>7} vectors × {} dims  recall@{k} = {recall:.4}  {:>8.1} QPS",
            index.kind(),
            index.len(),
            index.dims(),
            nq as f64 / secs
        );
    }

    std::fs::remove_dir_all(&dir).ok();
    println!("\nBoth deployments answered the same calls from the same options —");
    println!("the dynamic path the CLI and future serving layers are built on.");
}
