//! Quickstart: exact k-NN search on the PDX layout in five steps.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small synthetic collection, stores it in PDX, and runs an
//! exact PDX-BOND search (no preprocessing, no recall trade-off) next to
//! a brute-force scan to show both speed and exactness.

use pdx::prelude::*;
use std::time::Instant;

fn main() {
    // 1. A collection: 50 000 vectors of 128 dims (SIFT-shaped).
    let spec = *spec_by_name("sift").expect("spec exists");
    println!(
        "generating {}-dim '{}'-shaped collection…",
        spec.dims, spec.name
    );
    let ds = generate(&spec, 50_000, 100, 42);

    // 2. Store it in the PDX layout: flat partitions of ≤10 240 vectors,
    //    vector groups of 64 (the paper's defaults for exact search).
    let flat = FlatPdx::with_defaults(&ds.data, ds.len, ds.dims());
    println!(
        "stored {} vectors in {} PDX blocks",
        ds.len,
        flat.collection.blocks.len()
    );

    // 3. An exact pruned searcher: PDX-BOND with the distance-to-means
    //    dimension order. Works on the raw floats as-is.
    let bond = PdxBond::new(Metric::L2, VisitOrder::DistanceToMeans);
    let params = SearchParams::new(10);

    // 4. Search all queries, once with PDX-BOND, once with a plain
    //    PDX linear scan (both are exact; BOND skips work).
    let t0 = Instant::now();
    let mut bond_results = Vec::new();
    for qi in 0..ds.n_queries {
        bond_results.push(flat.search(&bond, ds.query(qi), &params));
    }
    let bond_time = t0.elapsed();

    let t1 = Instant::now();
    let mut scan_results = Vec::new();
    for qi in 0..ds.n_queries {
        scan_results.push(flat.linear_search(ds.query(qi), 10, Metric::L2));
    }
    let scan_time = t1.elapsed();

    // 5. Verify exactness and report throughput.
    let mut agree = 0usize;
    for (a, b) in bond_results.iter().zip(&scan_results) {
        let ia: std::collections::HashSet<u64> = a.iter().map(|n| n.id).collect();
        let ib: std::collections::HashSet<u64> = b.iter().map(|n| n.id).collect();
        agree += (ia == ib) as usize;
    }
    println!("\ntop-10 of query 0:");
    for n in &bond_results[0] {
        println!("  id {:>6}  L2² = {:.3}", n.id, n.distance);
    }
    println!(
        "\nexactness: {agree}/{} queries identical to the linear scan",
        ds.n_queries
    );
    println!(
        "PDX-BOND:        {:>8.1} QPS",
        ds.n_queries as f64 / bond_time.as_secs_f64()
    );
    println!(
        "PDX linear scan: {:>8.1} QPS",
        ds.n_queries as f64 / scan_time.as_secs_f64()
    );
    println!(
        "speedup from pruning: {:.2}x",
        scan_time.as_secs_f64() / bond_time.as_secs_f64()
    );
}
