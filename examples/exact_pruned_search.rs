//! Exact search shoot-out (the paper's §6.5 / Figure 9 scenario): all
//! exact competitors on one skewed, high-dimensional collection.
//!
//! ```text
//! cargo run --release --example exact_pruned_search
//! ```
//!
//! Competitors (every one returns the true k-NN):
//! * PDX-BOND (distance-to-means order) — the paper's contribution;
//! * PDX linear scan — auto-vectorized vertical kernels, no pruning;
//! * N-ary SIMD linear scan — explicit-AVX2 horizontal kernels
//!   (FAISS/USearch stand-in);
//! * N-ary scalar linear scan — the Scikit-learn stand-in;
//! * DSM linear scan — the fully decomposed layout of §7.

use pdx::prelude::*;
use std::time::Instant;

fn main() {
    let spec = *spec_by_name("msong").expect("spec exists");
    let n = 60_000;
    let n_queries = 100;
    let k = 10;
    println!(
        "generating {}-dim '{}'-shaped collection (n = {n})…",
        spec.dims, spec.name
    );
    let ds = generate(&spec, n, n_queries, 21);
    let d = ds.dims();

    // Deployments.
    let flat = FlatPdx::with_defaults(&ds.data, n, d);
    let nary = NaryMatrix::from_rows(&ds.data, n, d);
    let dsm = DsmMatrix::from_rows(&ds.data, n, d);
    let bond = PdxBond::new(Metric::L2, VisitOrder::DistanceToMeans);
    let params = SearchParams::new(k);

    let mut report: Vec<(&str, f64, Vec<Vec<f32>>)> = Vec::new();

    let time = |f: &mut dyn FnMut(usize) -> Vec<f32>| -> (f64, Vec<Vec<f32>>) {
        let t0 = Instant::now();
        let results: Vec<Vec<f32>> = (0..n_queries).map(f).collect();
        (n_queries as f64 / t0.elapsed().as_secs_f64(), results)
    };

    let (qps, res) = time(&mut |qi| {
        flat.search(&bond, ds.query(qi), &params)
            .iter()
            .map(|r| r.distance)
            .collect()
    });
    report.push(("PDX-BOND (dist-to-means)", qps, res));

    let (qps, res) = time(&mut |qi| {
        flat.linear_search(ds.query(qi), k, Metric::L2)
            .iter()
            .map(|r| r.distance)
            .collect()
    });
    report.push(("PDX linear scan", qps, res));

    let (qps, res) = time(&mut |qi| {
        linear_scan_nary(&nary, ds.query(qi), k, Metric::L2, KernelVariant::Simd)
            .iter()
            .map(|r| r.distance)
            .collect()
    });
    report.push(("N-ary SIMD (FAISS-like)", qps, res));

    let (qps, res) = time(&mut |qi| {
        linear_scan_nary(&nary, ds.query(qi), k, Metric::L2, KernelVariant::Scalar)
            .iter()
            .map(|r| r.distance)
            .collect()
    });
    report.push(("N-ary scalar (sklearn-like)", qps, res));

    let (qps, res) = time(&mut |qi| {
        linear_scan_dsm(&dsm, ds.query(qi), k, Metric::L2)
            .iter()
            .map(|r| r.distance)
            .collect()
    });
    report.push(("DSM linear scan", qps, res));

    // Every competitor is exact: the sorted top-k *distances* must match
    // the reference within float32 rounding (ids at tied boundaries can
    // legitimately swap between accumulation orders).
    let reference = report[1].2.clone();
    println!("\n{:<28} {:>10} {:>10}", "competitor", "QPS", "exact?");
    println!("{}", "-".repeat(52));
    for (name, qps, res) in &report {
        let exact = res.iter().zip(&reference).all(|(a, b)| {
            a.iter()
                .zip(b)
                .all(|(x, y)| (x - y).abs() <= y.abs().max(1.0) * 1e-4)
        });
        println!(
            "{name:<28} {qps:>10.1} {:>10}",
            if exact { "yes" } else { "NO!" }
        );
    }
    let baseline = report
        .iter()
        .find(|r| r.0.starts_with("N-ary scalar"))
        .unwrap()
        .1;
    println!("\nspeedups over the scalar baseline:");
    for (name, qps, _) in &report {
        println!("  {name:<28} {:>6.2}x", qps / baseline);
    }
}
