//! Approximate search on an IVF index with ADSampling + PDXearch — the
//! paper's flagship configuration (PDX-ADS, Figure 6).
//!
//! ```text
//! cargo run --release --example ivf_ann_search
//! ```
//!
//! Walks the full ANN pipeline: train IVF, rotate the collection with
//! ADSampling's random projection, deploy buckets in PDX, then sweep
//! `nprobe` and print the recall/QPS trade-off against an IVF linear
//! scan (the FAISS-IVF_FLAT stand-in) sharing the exact same buckets.

use pdx::prelude::*;
use std::time::Instant;

fn main() {
    let spec = *spec_by_name("deep").expect("spec exists");
    let n = 80_000;
    let n_queries = 200;
    let k = 10;
    println!(
        "generating {}-dim '{}'-shaped collection (n = {n})…",
        spec.dims, spec.name
    );
    let ds = generate(&spec, n, n_queries, 7);
    let d = ds.dims();

    println!("computing ground truth…");
    let gt = ground_truth(&ds.data, &ds.queries, d, k, Metric::L2, 0);

    // Train IVF once on the raw data; all competitors share its buckets.
    let nlist = IvfIndex::default_nlist(n);
    println!("training IVF with {nlist} buckets…");
    let index = IvfIndex::build(&ds.data, n, d, nlist, 12, 3);

    // ADSampling preprocessing: one random rotation of the collection.
    println!("fitting ADSampling rotation…");
    let ads = AdSampling::fit(d, 11);
    let rotated = ads.transform_collection(&ds.data, n, 0);

    // Two deployments of the same buckets.
    let ivf_ads = IvfPdx::new(&rotated, d, &index.assignments, DEFAULT_GROUP_SIZE);
    let ivf_raw = IvfHorizontal::new(&ds.data, d, &index.assignments, 32);

    println!(
        "\n{:>7} | {:>14} {:>9} | {:>14} {:>9}",
        "nprobe", "PDX-ADS QPS", "recall", "IVF-FLAT QPS", "recall"
    );
    println!("{}", "-".repeat(66));
    for nprobe in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        if nprobe > ivf_ads.blocks.len() {
            break;
        }
        // PDX-ADS.
        let params = SearchParams::new(k);
        let t0 = Instant::now();
        let mut results = Vec::with_capacity(n_queries);
        for qi in 0..n_queries {
            results.push(ivf_ads.search(&ads, ds.query(qi), nprobe, &params));
        }
        let ads_qps = n_queries as f64 / t0.elapsed().as_secs_f64();
        let ads_recall = mean_recall(
            &gt,
            &results
                .iter()
                .map(|r| r.iter().map(|x| x.id).collect())
                .collect::<Vec<_>>(),
            k,
        );

        // FAISS-like IVF_FLAT (horizontal SIMD linear scan of the same buckets).
        let t1 = Instant::now();
        let mut results = Vec::with_capacity(n_queries);
        for qi in 0..n_queries {
            results.push(ivf_raw.linear_search(
                ds.query(qi),
                k,
                nprobe,
                Metric::L2,
                KernelVariant::Simd,
            ));
        }
        let flat_qps = n_queries as f64 / t1.elapsed().as_secs_f64();
        let flat_recall = mean_recall(
            &gt,
            &results
                .iter()
                .map(|r| r.iter().map(|x| x.id).collect())
                .collect::<Vec<_>>(),
            k,
        );

        println!(
            "{nprobe:>7} | {ads_qps:>14.0} {ads_recall:>9.4} | {flat_qps:>14.0} {flat_recall:>9.4}"
        );
    }
    println!("\nBoth competitors probe identical buckets; PDX-ADS additionally prunes dimensions.");
}
