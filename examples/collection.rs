//! A mutable collection end to end: insert → search → delete → crash →
//! recover → compact, all behind the same `VectorIndex` trait the
//! frozen deployments serve.
//!
//! ```text
//! cargo run --release --example collection
//! ```
//!
//! Builds a persistent LSM-style collection on disk (write buffer +
//! sealed PDX segments + WAL + `PDX3` manifest), mutates it, simulates
//! a crash by tearing the WAL's trailing record, and reopens it through
//! `AnyIndex::open` — the same call that serves the frozen `PDX1`/`PDX2`
//! containers.

use pdx::prelude::*;

fn main() {
    let spec = *spec_by_name("sift").expect("spec exists");
    let n = 20_000;
    let nq = 64;
    let k = 10;
    println!(
        "generating {}/{} (n = {n}, queries = {nq})…",
        spec.name, spec.dims
    );
    let ds = generate(&spec, n, nq, 42);
    let d = ds.dims();

    let dir = std::env::temp_dir().join("pdx_collection_example");
    std::fs::remove_dir_all(&dir).ok();

    // 1. Create and bulk-load: inserts land in the write buffer (WAL
    //    first) and auto-seal into immutable PDX segments.
    let config = StoreConfig {
        block_size: 4096,
        buffer_capacity: 4096,
        ..StoreConfig::default()
    };
    let coll = Collection::create(&dir, d, config).expect("create collection");
    for i in 0..n {
        coll.insert(i as u64, &ds.data[i * d..(i + 1) * d])
            .expect("insert");
    }
    println!(
        "inserted {n} vectors → {} sealed segment(s) + {} buffered",
        coll.segment_count(),
        coll.buffer_len()
    );

    // 2. Delete a third: buffered rows vanish in place, sealed rows are
    //    tombstoned and filtered during the canonical heap merge.
    for id in (0..n as u64).filter(|id| id % 3 == 0) {
        coll.delete(id).expect("delete");
    }
    println!(
        "deleted every 3rd id → {} live, {} tombstoned",
        coll.live_len(),
        coll.tombstone_count()
    );

    // 3. Simulate a crash: drop the collection mid-flight and tear the
    //    last WAL record in half.
    coll.insert(1_000_000, &ds.data[..d]).expect("insert");
    let wal_seq = coll.wal_seq();
    drop(coll);
    let wal_path = dir.join(format!("wal-{wal_seq:06}.log"));
    let len = std::fs::metadata(&wal_path).expect("wal exists").len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal_path)
        .expect("open wal");
    file.set_len(len - 7).expect("tear the wal");
    drop(file);
    println!("simulated crash: tore the last WAL record");

    // 4. Recover through the same serving entry point as every other
    //    index kind. The torn insert is gone; every committed op is not.
    let index = AnyIndex::open(&dir).expect("recover collection");
    println!(
        "reopened via AnyIndex::open → kind = {}, {} live vectors",
        index.kind(),
        index.len()
    );
    assert_eq!(index.len(), n - n / 3 - 1); // ceil-third deleted, torn insert lost

    // 5. Compact and verify the store's strongest guarantee: the
    //    compacted collection answers bit-identically — distances and
    //    all — to a flat index built from scratch on the survivors.
    drop(index);
    let coll = Collection::open(&dir).expect("reopen");
    coll.compact().expect("compact");
    println!(
        "compacted → {} segment(s), {} tombstoned",
        coll.segment_count(),
        coll.tombstone_count()
    );
    let survivors: Vec<usize> = (0..n).filter(|i| i % 3 != 0).collect();
    let mut surviving_rows = Vec::with_capacity(survivors.len() * d);
    for &i in &survivors {
        surviving_rows.extend_from_slice(&ds.data[i * d..(i + 1) * d]);
    }
    let fresh = FlatPdx::new(
        &surviving_rows,
        survivors.len(),
        d,
        config.block_size,
        config.group_size,
    );
    let fresh: &dyn VectorIndex = &fresh;
    let opts = SearchOptions::new(k);
    let compacted = coll.search_batch(&ds.queries, &opts);
    let reference = fresh.search_batch(&ds.queries, &opts);
    for (got, want) in compacted.iter().zip(&reference) {
        for (g, w) in got.iter().zip(want) {
            assert_eq!(g.distance.to_bits(), w.distance.to_bits());
            assert_eq!(g.id, survivors[w.id as usize] as u64);
        }
    }
    println!("all {nq} query results bit-identical to a fresh flat build on the survivors");

    std::fs::remove_dir_all(&dir).ok();
    println!("\nThe same VectorIndex trait now serves frozen containers and");
    println!("live, crash-safe, compactable collections alike.");
}
