//! A guided tour of the four storage layouts and their kernels
//! (Figures 1 and 3 of the paper, in code).
//!
//! ```text
//! cargo run --release --example layout_tour
//! ```

use pdx::prelude::*;
use std::time::Instant;

fn time_scans(label: &str, mut scan: impl FnMut(), reps: usize) {
    // Warm up once, then time.
    scan();
    let t0 = Instant::now();
    for _ in 0..reps {
        scan();
    }
    let per = t0.elapsed().as_secs_f64() / reps as f64;
    println!("  {label:<24} {:>10.3} ms/scan", per * 1e3);
}

fn main() {
    let (n, d) = (131_072, 96);
    println!("collection: {n} vectors × {d} dims (float32)\n");
    let spec = DatasetSpec {
        name: "tour",
        dims: d,
        distribution: Distribution::Normal,
        paper_size: 0,
    };
    let ds = generate(&spec, n, 1, 5);
    let q = ds.query(0);

    // --- The four layouts -------------------------------------------------
    println!("building layouts…");
    let pdx_block = PdxBlock::from_rows(&ds.data, n, d, DEFAULT_GROUP_SIZE);
    let nary = NaryMatrix::from_rows(&ds.data, n, d);
    let dsm = DsmMatrix::from_rows(&ds.data, n, d);
    let dual = DualBlockMatrix::from_rows(&ds.data, n, d, 32);

    println!(
        "  PDX:        {} groups of ≤{} vectors, dimension-major inside groups",
        pdx_block.group_count(),
        pdx_block.group_size()
    );
    println!(
        "  N-ary:      {} rows of {} contiguous floats",
        nary.len(),
        nary.dims()
    );
    println!(
        "  DSM:        {} full columns of {} floats",
        dsm.dims(),
        dsm.len()
    );
    println!(
        "  Dual-block: head {} dims + tail {} dims per vector\n",
        dual.split(),
        d - dual.split()
    );

    // A value lives at the same logical place in all of them.
    let (v, dim) = (12_345usize, 40usize);
    assert_eq!(pdx_block.value(v, dim), nary.row(v)[dim]);
    assert_eq!(pdx_block.value(v, dim), dsm.value(v, dim));
    assert_eq!(pdx_block.value(v, dim), dual.vector(v)[dim]);
    println!(
        "value (vector {v}, dim {dim}) identical across layouts: {}\n",
        pdx_block.value(v, dim)
    );

    // --- Full-scan kernels on each layout ---------------------------------
    println!("full-collection L2 distance calculation (single thread):");
    let mut out = vec![0.0f32; n];
    let reps = 20;
    time_scans(
        "PDX (auto-vectorized)",
        || pdx_scan(Metric::L2, &pdx_block, q, &mut out),
        reps,
    );
    time_scans(
        "N-ary explicit SIMD",
        || {
            for (i, row) in nary.rows().enumerate() {
                out[i] = nary_distance(Metric::L2, KernelVariant::Simd, q, row);
            }
        },
        reps,
    );
    time_scans(
        "N-ary scalar",
        || {
            for (i, row) in nary.rows().enumerate() {
                out[i] = nary_distance(Metric::L2, KernelVariant::Scalar, q, row);
            }
        },
        reps,
    );
    time_scans(
        "DSM column-at-a-time",
        || dsm_scan(Metric::L2, &dsm, q, &mut out),
        reps,
    );
    time_scans(
        "N-ary + on-the-fly gather",
        || gather_scan(Metric::L2, &nary, q, &mut out),
        reps,
    );

    println!("\nExpected ordering (paper, Figures 3/12): PDX fastest, then N-ary SIMD,");
    println!("then DSM / scalar, with the gather kernel slowest — storing the data in");
    println!("PDX is what makes the vertical kernel pay off.");
}
